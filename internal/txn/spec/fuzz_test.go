package spec

import (
	"testing"

	"specpmt/internal/txn"
	"specpmt/internal/txn/txntest"
)

// Native fuzz targets. The seed corpus runs in ordinary `go test`; extend
// coverage with `go test -fuzz=FuzzDecodeEntries ./internal/txn/spec`.

func FuzzDecodeEntries(f *testing.F) {
	// Seed with a genuine record.
	w := txntest.NewWorld(16 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{DisableReclaim: true})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	tx.StoreUint64(a, 7)
	tx.Commit()
	var seed []byte
	e.ch.scanAll(env.Core, func(loc recLoc, rec []byte) bool {
		seed = append([]byte(nil), rec...)
		return true
	})
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, recHeader+recFooter))
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Must never panic, whatever the bytes.
		decodeEntries(raw)
	})
}

func FuzzChecksumTamper(f *testing.F) {
	f.Add([]byte("hello world"), 3)
	f.Fuzz(func(t *testing.T, data []byte, flip int) {
		if len(data) == 0 {
			return
		}
		sum := txn.Checksum64(data)
		mut := append([]byte(nil), data...)
		mut[((flip%len(mut))+len(mut))%len(mut)] ^= 0x01
		if txn.Checksum64(mut) == sum {
			t.Fatal("single-byte tamper not detected")
		}
	})
}
