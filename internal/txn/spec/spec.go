// Package spec implements software SpecPMT — speculatively persistent memory
// transactions, the central contribution of the paper (§3–§4).
//
// A transaction updates data in place and records the NEW value of each
// updated location in a per-thread speculative log (splog). Nothing is
// flushed during the transaction; at commit the log record — and only the
// log record — is flushed and a SINGLE fence issued (Figure 2, right). The
// record's salted checksum doubles as the commit marker. Because the log
// persists the most recent committed value of every datum, in-place data
// writes never need to be flushed (SpecSPMT); the log functions as a redo
// log for committed transactions and, because the freshest committed record
// of each datum outlives later transactions, as an undo log for interrupted
// ones.
//
// The engine maintains the paper's software structure (Figure 5): per-thread
// chained log blocks in persistent memory, a volatile hash index giving the
// freshest committed record of every address, and a reclaimer that compacts
// stale records on a dedicated core with exactly two fences per cycle.
//
// Two registered variants:
//
//	SpecSPMT    — no data persistence at commit (the full design)
//	SpecSPMT-DP — data flushed under the same commit fence (the paper's
//	              sub-optimal variant isolating the gain of fence removal
//	              from the gain of data-persistence removal)
package spec

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
)

const (
	magic = 0x53504543504d5431 // "SPECPMT1"

	offMagic      = 0
	offHead       = 8
	offBlockSize  = 16
	offCommitFlag = 24
)

// ErrTxTooLarge reports a transaction whose log record exceeds one block.
var ErrTxTooLarge = errors.New("spec: transaction write set exceeds log block size")

// Options configures the engine.
type Options struct {
	// BlockSize is the log block size in bytes (default 32 KiB).
	BlockSize int
	// DataPersist forces data flushes at commit (the SpecSPMT-DP variant).
	DataPersist bool
	// ReclaimThreshold triggers background reclamation once the estimated
	// stale log bytes exceed it (default 256 KiB). The paper: reclamation is
	// triggered "explicitly through an API or implicitly when a transaction
	// execution finds the memory space overhead reaching a tunable
	// threshold".
	ReclaimThreshold int64
	// DisableReclaim turns implicit reclamation off (ReclaimNow still works).
	DisableReclaim bool
	// BackgroundReclaim runs reclamation cycles on a dedicated goroutine —
	// the paper's software design (§4.2) — instead of synchronously at the
	// trigger point. Timing is identical (the cycle is charged to the
	// dedicated background core either way); the goroutine overlaps the
	// Go-level work with the application.
	BackgroundReclaim bool
	// DedicatedCommitFlag is an ablation knob: instead of relying on the
	// record checksum as the commit marker (§4.1's design, which saves "a
	// dedicated flag and a fence recording the commit status"), commit also
	// persists an explicit flag with its own barrier. Used to measure what
	// the checksum trick saves.
	DedicatedCommitFlag bool
}

func (o *Options) setDefaults() {
	if o.BlockSize == 0 {
		o.BlockSize = 32 << 10
	}
	if o.ReclaimThreshold == 0 {
		o.ReclaimThreshold = 256 << 10
	}
}

// Engine is the software SpecPMT engine for one thread.
type Engine struct {
	env txn.Env
	opt Options
	ch  *chain
	bg  *pmem.Core // reclaimer core (the paper's dedicated background thread)

	// index maps each address to its freshest committed log entry — the
	// volatile "record index hash table" of Figure 5. It is rebuilt from the
	// log on recovery (rebuild-on-crash policy, §4.2).
	index map[pmem.Addr]indexEnt

	liveBytes  int64 // committed record bytes currently in the chain
	staleBytes int64 // estimated reclaimable bytes among them
	open       bool
	needsScan  bool // attached post-crash: Recover must run before Begin

	// unfenced is true while at least one CommitNoFence record sits in the
	// write pending queue without an ordering fence behind it. Reclamation
	// copies per-entry fresh values into compact records, which would tear
	// transaction atomicity if a source record could still be lost to a
	// crash — so every reclaim entry point fences first when this is set.
	// Owned by the engine's single application thread.
	unfenced bool

	// bgmu serialises chain/index access between the transaction path and
	// the background reclaimer; uncontended (and effectively free) when
	// BackgroundReclaim is off.
	bgmu   sync.Mutex
	daemon *reclaimDaemon

	// cur is the engine's single reusable transaction object (the engine
	// enforces one open transaction per core, so one is all it needs):
	// write-set, dedup map, old-value map, and value arena are reset and
	// reused across Begin calls instead of reallocated. recBuf is the
	// log-record staging buffer — appendRecord copies it into the device,
	// so the next commit may overwrite it.
	cur    tx
	recBuf []byte
}

type indexEnt struct {
	ts     uint64
	rec    recLoc
	valOff int
	size   int
}

func init() {
	txn.Register("SpecSPMT", func(env txn.Env) (txn.Engine, error) {
		return New(env, Options{})
	})
	txn.Register("SpecSPMT-DP", func(env txn.Env) (txn.Engine, error) {
		return New(env, Options{DataPersist: true})
	})
}

// New attaches to (or initialises) a SpecPMT engine at env.Root.
func New(env txn.Env, opt Options) (*Engine, error) {
	opt.setDefaults()
	e := &Engine{env: env, opt: opt, bg: env.Dev.NewCore(), index: map[pmem.Addr]indexEnt{}}
	e.bg.SetTrackName("reclaimer")
	c := env.Core
	if c.LoadUint64(env.Root+offMagic) == magic {
		bs := int(c.LoadUint64(env.Root + offBlockSize))
		head := pmem.Addr(c.LoadUint64(env.Root + offHead))
		e.opt.BlockSize = bs
		e.ch = openChain(c, env.LogHeap, env.TS, bs, head)
		e.needsScan = true
		if opt.BackgroundReclaim && !opt.DisableReclaim {
			e.daemon = newReclaimDaemon(e)
		}
		return e, nil
	}
	ch, err := newChain(c, env.LogHeap, env.TS, opt.BlockSize)
	if err != nil {
		return nil, err
	}
	e.ch = ch
	// The head block must be durable before the root points at it, or a
	// crash in between would leave the root referencing garbage.
	ch.flushPending(pmem.KindLog)
	c.Fence()
	c.StoreUint64(env.Root+offHead, uint64(ch.head()))
	c.StoreUint64(env.Root+offBlockSize, uint64(opt.BlockSize))
	c.StoreUint64(env.Root+offMagic, magic)
	c.PersistBarrier(env.Root, txn.RootSize, pmem.KindLog)
	if opt.BackgroundReclaim && !opt.DisableReclaim {
		e.daemon = newReclaimDaemon(e)
	}
	return e, nil
}

// Name implements txn.Engine.
func (e *Engine) Name() string {
	if e.opt.DataPersist {
		return "SpecSPMT-DP"
	}
	return "SpecSPMT"
}

// Close implements txn.Engine, stopping the background reclaimer if one is
// running and surfacing any failure it hit.
func (e *Engine) Close() error {
	if e.daemon != nil {
		err := e.daemon.stop()
		e.daemon = nil
		return err
	}
	return nil
}

// Begin implements txn.Engine.
func (e *Engine) Begin() txn.Tx {
	if e.open {
		panic("spec: engine supports one open transaction per core")
	}
	if e.needsScan {
		panic("spec: Recover must run before transactions on an attached engine")
	}
	e.open = true
	e.env.Core.Stats.TxBegun++
	e.env.Core.TraceTxBegin()
	t := &e.cur
	if t.e == nil {
		t.e = e
		t.ws = txn.NewWriteSet()
		t.byAddr = map[pmem.Addr]int{}
		t.old = map[pmem.Addr][]byte{}
	}
	t.reset()
	return t
}

type tx struct {
	e      *Engine
	ws     *txn.WriteSet
	ents   []pendingEnt
	byAddr map[pmem.Addr]int
	// old holds pre-transaction values for fast aborts during normal
	// execution (§5.3.2 discusses fast aborts; the slow path would be the
	// crash-recovery routine).
	old  map[pmem.Addr][]byte
	done bool
	// arena backs the per-entry value copies (pending log values and old
	// values), so the store path stops allocating once it reaches its
	// high-water capacity.
	arena txn.Arena
}

type pendingEnt struct {
	addr   pmem.Addr
	val    []byte
	valOff int // value offset inside the encoded record, set by Commit
}

// reset readies the reusable tx for a new transaction, keeping the maps,
// slices, and arena capacity warm.
func (t *tx) reset() {
	t.ws.Reset()
	t.ents = t.ents[:0]
	clear(t.byAddr)
	clear(t.old)
	t.done = false
	t.arena.Reset()
}

// Load implements txn.Tx: speculative logging keeps direct memory loads and
// in-place data, so a load is just a load.
func (t *tx) Load(addr pmem.Addr, buf []byte) { t.e.env.Core.Load(addr, buf) }

// LoadUint64 implements txn.Tx.
func (t *tx) LoadUint64(addr pmem.Addr) uint64 { return t.e.env.Core.LoadUint64(addr) }

// Compute implements txn.Tx.
func (t *tx) Compute(ns int64) { t.e.env.Core.Compute(ns) }

// StoreUint64 implements txn.Tx.
func (t *tx) StoreUint64(addr pmem.Addr, v uint64) {
	var b [8]byte
	putU64(b[:], 0, v)
	t.Store(addr, b[:])
}

// Store implements txn.Tx: update in place and splog the NEW value. No
// flush, no fence (Figure 2, right: "log new a" with no barrier).
func (t *tx) Store(addr pmem.Addr, data []byte) {
	if t.done {
		panic("spec: use of finished transaction")
	}
	c := t.e.env.Core
	if _, seen := t.old[addr]; !seen {
		prev := t.arena.Grab(len(data))
		c.Load(addr, prev)
		t.old[addr] = prev
	}
	c.Store(addr, data)
	t.ws.Add(addr, len(data))
	// Write-set indexing (§4): only the last update of a datum in the
	// transaction needs a log entry; earlier ones would be stale on arrival.
	if i, ok := t.byAddr[addr]; ok && len(t.ents[i].val) == len(data) {
		copy(t.ents[i].val, data)
		return
	}
	t.byAddr[addr] = len(t.ents)
	val := t.arena.Grab(len(data))
	copy(val, data)
	t.ents = append(t.ents, pendingEnt{addr: addr, val: val})
}

// Commit implements txn.Tx: encode one log record, flush it (plus data, for
// the DP variant), and issue the single commit fence.
func (t *tx) Commit() error { return t.commit(true) }

// CommitNoFence implements txn.DeferredCommitTx: the commit record is
// encoded and its flushes issued exactly as Commit does, but the trailing
// ordering fence is deferred to a later pmem.Core.Fence on the same core
// (specpmt.Thread.Fence). Until that fence retires, a crash may lose this
// transaction — but only together with every later one on the thread: log
// recovery stops at the first torn record, so the recovered state is always
// a prefix of the speculative commit order. The volatile index is published
// immediately, so later transactions on the thread observe the speculative
// state, mirroring the paper's speculative-persistence model at record
// granularity.
//
// Engines running a background reclaimer (or the dedicated-commit-flag
// ablation, whose flag barrier is itself a fence) gain nothing from
// deferral and fall back to a full Commit.
func (t *tx) CommitNoFence() error {
	if t.e.daemon != nil || t.e.opt.DedicatedCommitFlag {
		return t.commit(true)
	}
	return t.commit(false)
}

func (t *tx) commit(fence bool) error {
	if t.done {
		return errors.New("spec: transaction already finished")
	}
	t.done = true
	e := t.e
	e.open = false
	c := e.env.Core
	commitStart := c.Now()
	if len(t.ents) == 0 {
		c.Stats.TxCommitted++
		c.TraceTxCommit(commitStart, 0, 0)
		return nil
	}
	size := recHeader + recFooter
	for _, en := range t.ents {
		size += entHeader + len(en.val)
	}
	if cap(e.recBuf) < size {
		e.recBuf = make([]byte, size)
	}
	rec := e.recBuf[:size]
	ts := e.env.TS.Next()
	putU32(rec, 0, uint32(size))
	putU32(rec, 4, uint32(len(t.ents)))
	putU64(rec, 8, ts)
	p := recHeader
	for i := range t.ents {
		en := &t.ents[i]
		putU64(rec, p, uint64(en.addr))
		putU32(rec, p+8, uint32(len(en.val)))
		copy(rec[p+entHeader:], en.val)
		en.valOff = p + entHeader
		p += entHeader + len(en.val)
	}
	e.bgmu.Lock()
	loc, err := e.ch.appendRecord(rec)
	if err != nil {
		e.bgmu.Unlock()
		t.restoreOld()
		if errors.Is(err, errRecordTooLarge) {
			err = ErrTxTooLarge
		}
		c.Stats.TxAborted++
		c.TraceTxAbort()
		return err
	}
	if e.opt.DataPersist {
		for _, l := range t.ws.Lines() {
			c.Flush(pmem.Addr(l*pmem.LineSize), pmem.LineSize, pmem.KindData)
		}
	}
	e.ch.flushPending(pmem.KindLog)
	if fence {
		c.Fence() // the one and only commit fence
		e.unfenced = false
	} else {
		e.unfenced = true
	}
	if e.opt.DedicatedCommitFlag {
		// Ablation: the commit-status flag plus barrier the checksum-as-
		// commit-marker design eliminates.
		c.StoreUint64(e.env.Root+offCommitFlag, ts)
		c.PersistBarrier(e.env.Root+offCommitFlag, 8, pmem.KindLog)
	}
	// Publish committed entries in the volatile index; what they displace
	// becomes reclaimable.
	for i := range t.ents {
		en := &t.ents[i]
		if prev, ok := e.index[en.addr]; ok {
			e.staleBytes += int64(entHeader + prev.size)
		}
		e.index[en.addr] = indexEnt{ts: ts, rec: loc, valOff: en.valOff, size: len(en.val)}
	}
	e.liveBytes += int64(size)
	c.Stats.TxCommitted++
	c.Stats.LogRecords++
	c.Stats.AddLiveLog(int64(size))
	c.TraceLogAppend(size)
	c.TraceTxCommit(commitStart, len(t.ents), size)
	trigger := !e.opt.DisableReclaim && e.staleBytes > e.opt.ReclaimThreshold
	e.bgmu.Unlock()
	if trigger {
		if e.daemon != nil {
			e.daemon.signal()
		} else if err := e.ReclaimNow(); err != nil {
			return fmt.Errorf("spec: commit succeeded but reclamation failed: %w", err)
		}
	}
	return nil
}

// Abort implements txn.Tx: restore the pre-transaction values in place.
// Nothing was flushed, so no persistence work is needed.
func (t *tx) Abort() error {
	if t.done {
		return errors.New("spec: transaction already finished")
	}
	t.done = true
	t.e.open = false
	t.restoreOld()
	t.e.env.Core.Stats.TxAborted++
	t.e.env.Core.TraceTxAbort()
	return nil
}

func (t *tx) restoreOld() {
	c := t.e.env.Core
	for addr, val := range t.old {
		c.Store(addr, val)
	}
}

// Recover implements txn.Engine (§3.1): scan the chain from its head,
// replay every committed record's entries in chronological order — redoing
// completed transactions and thereby undoing interrupted ones — persist the
// restored data, and rebuild the volatile index.
func (e *Engine) Recover() error {
	e.bgmu.Lock()
	defer e.bgmu.Unlock()
	c := e.env.Core
	recoverStart := c.Now()
	e.index = map[pmem.Addr]indexEnt{}
	e.liveBytes, e.staleBytes = 0, 0
	touched := txn.NewWriteSet()
	tb, to := e.ch.scanAll(c, func(loc recLoc, rec []byte) bool {
		ts, ents := decodeEntries(rec)
		for _, en := range ents {
			c.Store(en.Addr, en.Val)
			touched.Add(en.Addr, len(en.Val))
			if prev, ok := e.index[en.Addr]; ok {
				e.staleBytes += int64(entHeader + prev.size)
			}
			e.index[en.Addr] = indexEnt{ts: ts, rec: loc, valOff: en.ValOff, size: len(en.Val)}
		}
		e.liveBytes += int64(len(rec))
		return true
	})
	for _, l := range touched.Lines() {
		c.Flush(pmem.Addr(l*pmem.LineSize), pmem.LineSize, pmem.KindData)
	}
	c.Fence()
	e.ch.resumeAt(tb, to)
	e.ch.flushPending(pmem.KindLog)
	c.Fence()
	e.needsScan = false
	c.TraceRecoverSpan(recoverStart)
	return nil
}

// ReclaimNow runs one reclamation cycle on the background core (§4.2): scan
// every full block, copy fresh entries into compact records in new blocks,
// splice the new blocks into the chain with two fences, and free the stale
// prefix. Freshness comes from the volatile index; a log entry is fresh iff
// the index still points at it.
func (e *Engine) ReclaimNow() error {
	// Retire any deferred commit fences first: reclamation must only ever
	// copy records that can no longer be torn by a crash (see Engine.
	// unfenced). CommitNoFence falls back to a fenced commit whenever a
	// background daemon exists, so this path is only taken on the engine's
	// own application thread and the fence is core-safe.
	if e.unfenced {
		e.env.Core.Fence()
		e.unfenced = false
	}
	e.bgmu.Lock()
	defer e.bgmu.Unlock()
	return e.reclaimLocked()
}

// NoteFence records that the caller issued an ordering fence on the
// engine's application core (e.g. specpmt.Thread.Fence), retiring every
// deferred CommitNoFence record. Must run on the application thread.
func (e *Engine) NoteFence() { e.unfenced = false }

// reclaimLocked performs the cycle; callers hold e.bgmu.
func (e *Engine) reclaimLocked() error {
	ch := e.ch
	if len(ch.blocks) <= 1 {
		return nil // only the active tail block: nothing reclaimable
	}
	bg := e.bg
	reclaimStart := bg.Now()
	keepFrom := len(ch.blocks) - 1 // the active tail block is never touched
	// Gather fresh entries from the prefix, in chain (chronological) order.
	type freshEnt struct {
		addr pmem.Addr
		val  []byte
		ts   uint64 // source record timestamp (ordering only)
		// src pins the entry's current location so the index hand-over
		// after the splice is exact.
		src       recLoc
		srcValOff int
	}
	var fresh []freshEnt
	var prefixBytes int64
	var staleEnts uint64
	prefix := map[pmem.Addr]bool{}
	for _, b := range ch.blocks[:keepFrom] {
		prefix[b] = true
	}
	ch.scanAll(bg, func(loc recLoc, rec []byte) bool {
		if !prefix[loc.block] {
			return false // reached the kept tail: stop scanning
		}
		prefixBytes += int64(len(rec))
		ts, ents := decodeEntries(rec)
		for _, en := range ents {
			ie, ok := e.index[en.Addr]
			if ok && ie.rec == loc && ie.valOff == en.ValOff {
				fresh = append(fresh, freshEnt{en.Addr, append([]byte(nil), en.Val...), ts, loc, en.ValOff})
			} else {
				staleEnts++
			}
		}
		return true
	})
	// Build compact records on new blocks (written by the reclaimer core).
	type movedEnt struct {
		src       recLoc
		srcValOff int
		dst       indexEnt
	}
	var compact *chain
	moved := map[pmem.Addr]movedEnt{}
	var compactBytes int64
	if len(fresh) > 0 {
		var err error
		compact, err = newChain(bg, e.env.LogHeap, e.env.TS, e.opt.BlockSize)
		if err != nil {
			return err
		}
		// Pack entries into records, respecting the block payload — and
		// never across a timestamp boundary. §4.2 stamps the compact record
		// with its newest member's timestamp, which is exact here because
		// every member shares one timestamp: multi-thread recovery (§4.1)
		// merges records ACROSS chains ordered by the record stamp, so
		// letting an old entry ride in a record stamped with a newer
		// member's timestamp would replay it over another thread's
		// genuinely newer write to the same address. Entries from one
		// source record share its timestamp, and chains are
		// timestamp-ordered, so grouping costs one record header per
		// surviving source record.
		for start := 0; start < len(fresh); {
			size := recHeader + recFooter
			end := start
			for end < len(fresh) && fresh[end].ts == fresh[start].ts {
				s := size + entHeader + len(fresh[end].val)
				if s > compact.payload() {
					break
				}
				size = s
				end++
			}
			if end == start {
				return fmt.Errorf("spec: entry larger than log block payload")
			}
			rec := make([]byte, size)
			putU32(rec, 0, uint32(size))
			putU32(rec, 4, uint32(end-start))
			p := recHeader
			for i := start; i < end; i++ {
				f := fresh[i]
				putU64(rec, p, uint64(f.addr))
				putU32(rec, p+8, uint32(len(f.val)))
				copy(rec[p+entHeader:], f.val)
				p += entHeader + len(f.val)
			}
			putU64(rec, 8, fresh[start].ts)
			loc, err := compact.appendRecord(rec)
			if err != nil {
				return err
			}
			p = recHeader
			for i := start; i < end; i++ {
				f := fresh[i]
				moved[f.addr] = movedEnt{
					src:       f.src,
					srcValOff: f.srcValOff,
					dst:       indexEnt{ts: f.ts, rec: loc, valOff: p + entHeader, size: len(f.val)},
				}
				p += entHeader + len(f.val)
			}
			compactBytes += int64(size)
			start = end
		}
		compact.sealTail()
		compact.flushPending(pmem.KindGC)
	}
	var newBlocks []pmem.Addr
	var newIncarn map[pmem.Addr]uint64
	newUsed := 0
	if compact != nil {
		newBlocks, newIncarn, newUsed = compact.blocks, compact.incarn, compact.used
	}
	newHead, displaced := ch.replacePrefix(bg, newBlocks, newIncarn, newUsed, keepFrom)
	// Fence two: the new head pointer.
	bg.StoreUint64(e.env.Root+offHead, uint64(newHead))
	bg.PersistBarrier(e.env.Root+offHead, 8, pmem.KindGC)
	ch.freeBlocks(displaced)
	// Index entries for moved values now point at the compact records; the
	// tail block's entries are untouched. The hand-over matches on the
	// entry's source location (a compacted entry's record timestamp is its
	// group's max, so timestamps cannot identify entries across repeated
	// compactions).
	for a, m := range moved {
		if cur, ok := e.index[a]; ok && cur.rec == m.src && cur.valOff == m.srcValOff {
			e.index[a] = indexEnt{ts: cur.ts, rec: m.dst.rec, valOff: m.dst.valOff, size: m.dst.size}
		}
	}
	delta := prefixBytes - compactBytes
	e.liveBytes -= delta
	e.staleBytes = 0
	st := e.env.Core.Stats
	st.ReclaimCycles++
	st.LogReclaimed += staleEnts
	st.AddLiveLog(-delta)
	bg.TraceReclaim(reclaimStart, staleEnts, delta)
	e.env.Core.TraceLiveLog()
	return nil
}

// LiveLogBytes reports the committed record bytes currently in the chain —
// the memory-space overhead the paper's §4.2/§5 discussion is about.
func (e *Engine) LiveLogBytes() int64 {
	e.bgmu.Lock()
	defer e.bgmu.Unlock()
	return e.liveBytes
}

// sortEntriesByTS is used by multi-thread recovery (pool.go).
func sortRecordsByTS(recs []replayRec) {
	sort.Slice(recs, func(i, j int) bool { return recs[i].ts < recs[j].ts })
}

type replayRec struct {
	ts   uint64
	ents []scanEntry
}
