package spec

import (
	"testing"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
	"specpmt/internal/txn/txntest"
)

func TestHashLogCommitDurable(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, err := NewHash(env, HashOptions{})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := w.DataHeap.Alloc(64)
	b, _ := w.DataHeap.Alloc(64)
	for v := uint64(1); v <= 10; v++ {
		tx := e.Begin()
		tx.StoreUint64(a, v)
		tx.StoreUint64(b, v*2)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	w.Dev.CrashClean()
	e2, _ := NewHash(w.SameEnv(env), HashOptions{})
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	c := w.Dev.NewCore()
	if got := c.LoadUint64(a); got != 10 {
		t.Fatalf("a=%d want 10", got)
	}
	if got := c.LoadUint64(b); got != 20 {
		t.Fatalf("b=%d want 20", got)
	}
}

func TestHashLogUncommittedIgnored(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, _ := NewHash(env, HashOptions{})
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	tx.StoreUint64(a, 42)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Open transaction at crash: its in-place write to a fresh address is
	// not covered by any slot; a's slot must still replay 42.
	tx = e.Begin()
	tx.StoreUint64(a, 43)
	e.Close()
	w.Dev.CrashClean()
	e2, _ := NewHash(w.SameEnv(env), HashOptions{})
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := w.Dev.NewCore().LoadUint64(a); got != 42 {
		t.Fatalf("a=%d want 42", got)
	}
}

func TestHashLogAbort(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, _ := NewHash(env, HashOptions{})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	tx.StoreUint64(a, 1)
	tx.Commit()
	tx = e.Begin()
	tx.StoreUint64(a, 2)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := env.Core.LoadUint64(a); got != 1 {
		t.Fatalf("a=%d after abort, want 1", got)
	}
}

func TestHashLogValueTooLarge(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, _ := NewHash(env, HashOptions{})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(4096)
	tx := e.Begin()
	tx.Store(a, make([]byte, slotValCap+1))
	if err := tx.Commit(); err != ErrValueTooLarge {
		t.Fatalf("err=%v want ErrValueTooLarge", err)
	}
}

func TestHashLogRandomTrafficVersusSequential(t *testing.T) {
	// The §4 ablation: one slot per datum turns the commit-time log writes
	// into scattered random lines; the chained sequential log coalesces.
	// The modeled slowdown should be substantial (the paper reports 3.2x on
	// its workload mix).
	run := func(mk func(env txn.Env) (txn.Engine, error)) int64 {
		w := txntest.NewWorld(128 << 20)
		env := w.Env(false)
		e, err := mk(env)
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		addrs := make([]pmem.Addr, 256)
		for i := range addrs {
			addrs[i], _ = w.DataHeap.Alloc(64)
		}
		start := env.Core.Now()
		for r := 0; r < 40; r++ {
			tx := e.Begin()
			for _, a := range addrs[:64] {
				tx.StoreUint64(a, uint64(r))
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
		}
		return env.Core.Now() - start
	}
	seq := run(func(env txn.Env) (txn.Engine, error) {
		return New(env, Options{DisableReclaim: true})
	})
	hash := run(func(env txn.Env) (txn.Engine, error) {
		return NewHash(env, HashOptions{})
	})
	ratio := float64(hash) / float64(seq)
	if ratio < 1.5 {
		t.Fatalf("hash-table log should be much slower than sequential: %.2fx (seq=%dns hash=%dns)",
			ratio, seq, hash)
	}
	t.Logf("hash/seq modeled-time ratio: %.2fx", ratio)
}

func TestHashLogRegisteredName(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	e, err := txn.New("SpecSPMT-Hash", w.Env(false))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Name() != "SpecSPMT-Hash" {
		t.Fatalf("name=%q", e.Name())
	}
}

func TestHashLogCommitHorizon(t *testing.T) {
	// Slots written after the durable commit timestamp must be ignored at
	// recovery: they belong to a commit whose marker never persisted.
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, _ := NewHash(env, HashOptions{})
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	tx.StoreUint64(a, 10)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Forge a newer slot for a (valid checksum, ts beyond the horizon).
	i, err := e.slotIndex(a)
	if err != nil {
		t.Fatal(err)
	}
	forged := make([]byte, slotHeader+8+8)
	putU64(forged, 0, uint64(a))
	putU32(forged, 8, 8)
	putU64(forged, 16, env.TS.Last()+100)
	putU64(forged, slotHeader, 999)
	putU64(forged, slotHeader+8, txn.Checksum64(forged[:slotHeader+8]))
	env.Core.Store(e.slotAddr(i), forged)
	env.Core.PersistBarrier(e.slotAddr(i), len(forged), pmem.KindLog)
	e.Close()
	w.Dev.CrashClean()
	e2, _ := NewHash(w.SameEnv(env), HashOptions{})
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	// The forged over-horizon slot must not replay; a's committed value was
	// overwritten in the slot, so the datum reverts to its persisted state
	// (the committed 10 was flushed... it was not: SpecSPMT-Hash does not
	// flush data). The contract here is only that 999 never replays.
	if got := w.Dev.NewCore().LoadUint64(a); got == 999 {
		t.Fatal("over-horizon slot replayed")
	}
}
