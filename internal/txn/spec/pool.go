package spec

import (
	"bytes"
	"fmt"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
)

// Pool manages one SpecPMT engine per thread. Each thread owns a private log
// chain and core ("each thread manages its own log without consulting with
// other threads", §3.1); commit timestamps from the shared Timestamp source
// order records across threads.
//
// Like all persistent memory transactions the paper compares against,
// SpecPMT provides atomic durability and leaves isolation to the caller
// (§4.3.3): threads must coordinate access to shared locations with their
// own concurrency control; the pool only guarantees that the merged,
// timestamp-ordered replay at recovery reproduces the committed history.
type Pool struct {
	engines []*Engine
}

// NewPool constructs n thread engines. envs must have length n, each with a
// distinct Root and Core but a shared Dev, heaps, and TS.
func NewPool(envs []txn.Env, opt Options) (*Pool, error) {
	p := &Pool{}
	for i, env := range envs {
		// Pool engines are driven one-goroutine-each against a shared
		// device: pin device-level locking on, overriding any exclusive-mode
		// fast path a single-threaded harness may have requested.
		env.Dev.ForceShared()
		e, err := New(env, opt)
		if err != nil {
			return nil, fmt.Errorf("spec: pool thread %d: %w", i, err)
		}
		p.engines = append(p.engines, e)
	}
	return p, nil
}

// Threads returns the number of thread engines.
func (p *Pool) Threads() int { return len(p.engines) }

// Engine returns thread i's engine. Each engine must only be driven by its
// own goroutine.
func (p *Pool) Engine(i int) *Engine { return p.engines[i] }

// Close closes every thread engine.
func (p *Pool) Close() error {
	for _, e := range p.engines {
		if err := e.Close(); err != nil {
			return err
		}
	}
	return nil
}

// VerifyRecovered is the pool's recovery-invariant checker: every thread
// engine's structure must verify (chain well-formedness, allocator
// liveness, index/record agreement — see Engine.VerifyRecovered), every
// address with a committed record anywhere in the pool must be covered by
// some engine's index (PR 7's coverage invariant at pool scope), and memory
// must agree with the pool-wide newest committed value per address —
// per-engine entries may legitimately be superseded by another thread's
// later write. Call only from a quiesced pool.
func (p *Pool) VerifyRecovered(allocated func(addr pmem.Addr, n int) bool) error {
	type winner struct {
		eng int
		ie  indexEnt
		rec []byte
	}
	winners := map[pmem.Addr]winner{}
	type entryRef struct {
		eng int
		loc recLoc
	}
	committedAddrs := map[pmem.Addr]entryRef{}
	for i, e := range p.engines {
		e.bgmu.Lock()
		committed, err := e.verifyLocked(allocated)
		if err != nil {
			e.bgmu.Unlock()
			return fmt.Errorf("thread %d: %w", i, err)
		}
		for addr, ie := range e.index {
			if w, ok := winners[addr]; !ok || ie.ts > w.ie.ts {
				winners[addr] = winner{eng: i, ie: ie, rec: committed[ie.rec]}
			}
		}
		for loc, rec := range committed {
			_, ents := decodeEntries(rec)
			for _, en := range ents {
				committedAddrs[en.Addr] = entryRef{eng: i, loc: loc}
			}
		}
		e.bgmu.Unlock()
	}
	for addr, ref := range committedAddrs {
		if _, ok := winners[addr]; !ok {
			return fmt.Errorf("spec: committed entry for addr %d (thread %d, block %d off %d) is not covered by any index",
				addr, ref.eng, ref.loc.block, ref.loc.off)
		}
	}
	c := p.engines[0].env.Core
	var buf []byte
	for addr, w := range winners {
		want := w.rec[w.ie.valOff : w.ie.valOff+w.ie.size]
		if cap(buf) < w.ie.size {
			buf = make([]byte, w.ie.size)
		}
		buf = buf[:w.ie.size]
		c.Load(addr, buf)
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("spec: memory at addr %d diverges from its newest committed record (thread %d, ts %d): got %x, committed %x",
				addr, w.eng, w.ie.ts, buf, want)
		}
	}
	return nil
}

// Recover performs merged multi-thread recovery (§4.1, §5.2.2): every
// thread's committed records are collected, globally sorted by commit
// timestamp, and replayed in that order; the restored data is persisted.
// Afterwards the old chains are retired, but NOT to empty ones: the first
// engine's fresh chain is seeded with compact records holding the final
// recovered value of every live cell (§4.2-style compaction).
//
// That seeding upholds the invariant replay-undo correctness rests on:
// every cell a transaction may speculatively dirty in place has a committed
// value somewhere in the live logs. Replay redoes the last committed value
// over whatever a crash let leak from the caches — which "thereby undoes
// interrupted ones" (§3.1), and equally undoes CommitNoFence records whose
// deferred fence never retired. Were the chains truncated bare, a cell
// whose next writers all die unfenced at the following crash would have no
// committed record left to undo its leaked speculative bytes, and a torn
// transaction could surface. (The same contract puts fresh allocations on
// the caller: initialize new memory inside a committed transaction before
// speculating on it.)
func (p *Pool) Recover() error {
	if len(p.engines) == 0 {
		return nil
	}
	c := p.engines[0].env.Core
	var recs []replayRec
	for _, e := range p.engines {
		e.ch.scanAll(c, func(loc recLoc, rec []byte) bool {
			ts, ents := decodeEntries(rec)
			recs = append(recs, replayRec{ts: ts, ents: ents})
			return true
		})
	}
	sortRecordsByTS(recs)
	touched := txn.NewWriteSet()
	// final tracks the winning (newest-timestamp) value per cell during
	// replay; order is first-touch replay order, so the pass is
	// deterministic for a given log state.
	type coverEnt struct {
		val []byte
		ts  uint64
	}
	final := map[pmem.Addr]coverEnt{}
	var order []pmem.Addr
	for _, r := range recs {
		for _, en := range r.ents {
			c.Store(en.Addr, en.Val)
			touched.Add(en.Addr, len(en.Val))
			if _, ok := final[en.Addr]; !ok {
				order = append(order, en.Addr)
			}
			final[en.Addr] = coverEnt{val: en.Val, ts: r.ts}
		}
	}
	for _, l := range touched.Lines() {
		c.Flush(pmem.Addr(l*pmem.LineSize), pmem.LineSize, pmem.KindData)
	}
	c.Fence()
	// Retire every chain. Each engine gets a fresh chain (fresh block
	// incarnations — reusing the old head block would let its residual
	// records alias new ones at equal offsets); the first engine's carries
	// the coverage records. Only once the new chain is durable is the head
	// pointer switched and the old blocks freed, so a crash inside recovery
	// re-runs it from the old chains.
	for ei, e := range p.engines {
		ec := e.env.Core
		nc, err := newChain(ec, e.env.LogHeap, e.env.TS, e.opt.BlockSize)
		if err != nil {
			return fmt.Errorf("spec: pool recovery: %w", err)
		}
		e.index = map[pmem.Addr]indexEnt{}
		e.liveBytes, e.staleBytes = 0, 0
		if ei == 0 {
			// Pack the recovered cells into committed records, each stamped
			// with the newest timestamp among its members (§4.2), and index
			// them so reclamation sees the coverage entries as live.
			for start := 0; start < len(order); {
				size := recHeader + recFooter
				end := start
				for end < len(order) {
					s := size + entHeader + len(final[order[end]].val)
					if s > nc.payload() {
						break
					}
					size = s
					end++
				}
				if end == start {
					return fmt.Errorf("spec: recovered entry larger than log block payload")
				}
				rec := make([]byte, size)
				putU32(rec, 0, uint32(size))
				putU32(rec, 4, uint32(end-start))
				maxTS := uint64(0)
				off := recHeader
				for i := start; i < end; i++ {
					f := final[order[i]]
					if f.ts > maxTS {
						maxTS = f.ts
					}
					putU64(rec, off, uint64(order[i]))
					putU32(rec, off+8, uint32(len(f.val)))
					copy(rec[off+entHeader:], f.val)
					off += entHeader + len(f.val)
				}
				putU64(rec, 8, maxTS)
				loc, err := nc.appendRecord(rec)
				if err != nil {
					return fmt.Errorf("spec: pool recovery: %w", err)
				}
				off = recHeader
				for i := start; i < end; i++ {
					f := final[order[i]]
					e.index[order[i]] = indexEnt{ts: f.ts, rec: loc, valOff: off + entHeader, size: len(f.val)}
					off += entHeader + len(f.val)
				}
				e.liveBytes += int64(size)
				start = end
			}
		}
		nc.flushPending(pmem.KindLog)
		ec.Fence()
		ec.StoreUint64(e.env.Root+offHead, uint64(nc.head()))
		ec.PersistBarrier(e.env.Root+offHead, 8, pmem.KindLog)
		old := e.ch
		e.ch = nc
		for _, b := range old.blocks {
			old.heap.Free(b, old.bsize)
		}
		e.needsScan = false
	}
	return nil
}
