package spec

import (
	"fmt"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
)

// Pool manages one SpecPMT engine per thread. Each thread owns a private log
// chain and core ("each thread manages its own log without consulting with
// other threads", §3.1); commit timestamps from the shared Timestamp source
// order records across threads.
//
// Like all persistent memory transactions the paper compares against,
// SpecPMT provides atomic durability and leaves isolation to the caller
// (§4.3.3): threads must coordinate access to shared locations with their
// own concurrency control; the pool only guarantees that the merged,
// timestamp-ordered replay at recovery reproduces the committed history.
type Pool struct {
	engines []*Engine
}

// NewPool constructs n thread engines. envs must have length n, each with a
// distinct Root and Core but a shared Dev, heaps, and TS.
func NewPool(envs []txn.Env, opt Options) (*Pool, error) {
	p := &Pool{}
	for i, env := range envs {
		// Pool engines are driven one-goroutine-each against a shared
		// device: pin device-level locking on, overriding any exclusive-mode
		// fast path a single-threaded harness may have requested.
		env.Dev.ForceShared()
		e, err := New(env, opt)
		if err != nil {
			return nil, fmt.Errorf("spec: pool thread %d: %w", i, err)
		}
		p.engines = append(p.engines, e)
	}
	return p, nil
}

// Threads returns the number of thread engines.
func (p *Pool) Threads() int { return len(p.engines) }

// Engine returns thread i's engine. Each engine must only be driven by its
// own goroutine.
func (p *Pool) Engine(i int) *Engine { return p.engines[i] }

// Close closes every thread engine.
func (p *Pool) Close() error {
	for _, e := range p.engines {
		if err := e.Close(); err != nil {
			return err
		}
	}
	return nil
}

// Recover performs merged multi-thread recovery (§4.1, §5.2.2): every
// thread's committed records are collected, globally sorted by commit
// timestamp, and replayed in that order; the restored data is persisted.
// Afterwards all chains are truncated — with the data durable, the log
// records have served their purpose (the same argument as the §4.3.1
// mechanism switch) — and every engine is ready for new transactions.
func (p *Pool) Recover() error {
	if len(p.engines) == 0 {
		return nil
	}
	c := p.engines[0].env.Core
	var recs []replayRec
	for _, e := range p.engines {
		e.ch.scanAll(c, func(loc recLoc, rec []byte) bool {
			ts, ents := decodeEntries(rec)
			recs = append(recs, replayRec{ts: ts, ents: ents})
			return true
		})
	}
	sortRecordsByTS(recs)
	touched := txn.NewWriteSet()
	for _, r := range recs {
		for _, en := range r.ents {
			c.Store(en.Addr, en.Val)
			touched.Add(en.Addr, len(en.Val))
		}
	}
	for _, l := range touched.Lines() {
		c.Flush(pmem.Addr(l*pmem.LineSize), pmem.LineSize, pmem.KindData)
	}
	c.Fence()
	// Retire every chain: the data is durable, so no record is needed. Each
	// engine gets a fresh chain (fresh block incarnations — reusing the old
	// head block would let its residual records alias new ones at equal
	// offsets), the head pointer is switched durably, and only then are the
	// old blocks freed.
	for _, e := range p.engines {
		ec := e.env.Core
		nc, err := newChain(ec, e.env.LogHeap, e.env.TS, e.opt.BlockSize)
		if err != nil {
			return fmt.Errorf("spec: pool recovery: %w", err)
		}
		nc.flushPending(pmem.KindLog)
		ec.Fence()
		ec.StoreUint64(e.env.Root+offHead, uint64(nc.head()))
		ec.PersistBarrier(e.env.Root+offHead, 8, pmem.KindLog)
		old := e.ch
		e.ch = nc
		for _, b := range old.blocks {
			old.heap.Free(b, old.bsize)
		}
		e.index = map[pmem.Addr]indexEnt{}
		e.liveBytes, e.staleBytes = 0, 0
		e.needsScan = false
	}
	return nil
}
