package spec

import (
	"fmt"
	"sort"

	"specpmt/internal/pmem"
)

// This file implements the programming-model operations of §4.3:
// switching away from speculative logging (§4.3.1) and adopting external
// data (§4.3.2).

// Seal switches the engine OUT of speculative logging (§4.3.1: "SpecPMT
// allows switching from speculative logging to another crash consistency
// mechanism. Because SpecPMT uses in-place updates, it only needs to flush
// dirty cache lines of durable data at the transition point. Once completed,
// speculative logs are no longer needed for crash recovery").
//
// The flush is selective, driven by the volatile record index ("selective
// flushing through software analysis of record indices and clwbs"): every
// address with a live log record is flushed, one fence persists them all,
// and the log chain is retired. The engine root's magic is cleared durably,
// so another engine can be initialised at the same root afterwards.
//
// No transaction may be open; the engine is unusable after Seal.
func (e *Engine) Seal() error {
	e.bgmu.Lock()
	defer e.bgmu.Unlock()
	if e.open {
		return fmt.Errorf("spec: Seal with a transaction open")
	}
	if e.needsScan {
		return fmt.Errorf("spec: Seal before Recover")
	}
	c := e.env.Core
	// Selective flush of every datum the log still covers, in address order
	// (the most favourable drain pattern available).
	lines := map[uint64]bool{}
	for addr, ie := range e.index {
		first := pmem.LineOf(addr)
		last := pmem.LineOf(addr + pmem.Addr(ie.size-1))
		for l := first; l <= last; l++ {
			lines[l] = true
		}
	}
	ordered := make([]uint64, 0, len(lines))
	for l := range lines {
		ordered = append(ordered, l)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })
	for _, l := range ordered {
		c.Flush(pmem.Addr(l*pmem.LineSize), pmem.LineSize, pmem.KindData)
	}
	c.Fence()
	// The data is durable: clear the root durably so the log chain is
	// unreachable, then free it.
	c.StoreUint64(e.env.Root+offMagic, 0)
	c.StoreUint64(e.env.Root+offHead, 0)
	c.PersistBarrier(e.env.Root, 16, pmem.KindLog)
	for _, b := range e.ch.blocks {
		e.env.LogHeap.Free(b, e.ch.bsize)
	}
	c.Stats.AddLiveLog(-e.liveBytes)
	c.TraceLiveLog()
	e.ch = nil
	e.index = nil
	e.liveBytes, e.staleBytes = 0, 0
	e.needsScan = true // engine is dead; Begin would panic via needsScan
	return nil
}

// Checkpoint adopts external durable data (§4.3.2): a region that was
// written by other software (or a previous run under a different mechanism)
// has no speculative log records, so an interrupted transaction touching it
// could not be revoked. Checkpoint snapshots the region's current content
// into committed log records — "the software can update the external data
// in a crash-consistent manner by creating a snapshot prior to data
// modification... SpecPMT only snapshots the data once".
//
// After Checkpoint returns, the region is fully covered: transactions may
// update it with ordinary crash-atomicity guarantees.
func (e *Engine) Checkpoint(addr pmem.Addr, size int) error {
	e.bgmu.Lock()
	defer e.bgmu.Unlock()
	if e.open {
		return fmt.Errorf("spec: Checkpoint with a transaction open")
	}
	if e.needsScan {
		return fmt.Errorf("spec: Checkpoint before Recover")
	}
	if size <= 0 {
		return nil
	}
	c := e.env.Core
	// Snapshot in record-sized chunks, each a committed record of one
	// entry. Chunks are bounded so any region fits the block payload.
	maxChunk := e.ch.payload() - recHeader - recFooter - entHeader
	if maxChunk > 4096 {
		maxChunk = 4096
	}
	for off := 0; off < size; off += maxChunk {
		n := size - off
		if n > maxChunk {
			n = maxChunk
		}
		at := addr + pmem.Addr(off)
		recSize := recHeader + entHeader + n + recFooter
		rec := make([]byte, recSize)
		ts := e.env.TS.Next()
		putU32(rec, 0, uint32(recSize))
		putU32(rec, 4, 1)
		putU64(rec, 8, ts)
		putU64(rec, recHeader, uint64(at))
		putU32(rec, recHeader+8, uint32(n))
		c.Load(at, rec[recHeader+entHeader:recHeader+entHeader+n])
		loc, err := e.ch.appendRecord(rec)
		if err != nil {
			return fmt.Errorf("spec: checkpoint: %w", err)
		}
		e.ch.flushPending(pmem.KindLog)
		c.Fence()
		if prev, ok := e.index[at]; ok {
			e.staleBytes += int64(entHeader + prev.size)
		}
		e.index[at] = indexEnt{ts: ts, rec: loc, valOff: recHeader + entHeader, size: n}
		e.liveBytes += int64(recSize)
		c.Stats.LogRecords++
		c.Stats.AddLiveLog(int64(recSize))
		c.TraceLogAppend(recSize)
	}
	return nil
}

// Covered reports whether every byte of [addr, addr+size) has a live
// speculative log record — i.e. whether a transaction may safely update the
// region without a prior Checkpoint. (Partial coverage counts as covered
// for the bytes that overlap; this is an advisory inspection helper.)
func (e *Engine) Covered(addr pmem.Addr, size int) bool {
	type iv struct{ lo, hi uint64 }
	var ivs []iv
	for a, ie := range e.index {
		ivs = append(ivs, iv{uint64(a), uint64(a) + uint64(ie.size)})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].lo < ivs[j].lo })
	cur := uint64(addr)
	end := uint64(addr) + uint64(size)
	for _, v := range ivs {
		if v.hi <= cur {
			continue
		}
		if v.lo > cur {
			return false
		}
		if v.hi > cur {
			cur = v.hi
		}
		if cur >= end {
			return true
		}
	}
	return cur >= end
}
