package spec

import (
	"testing"

	"specpmt/internal/sim"
	"specpmt/internal/txn"
	"specpmt/internal/txn/txntest"
)

func TestConformanceBackgroundReclaim(t *testing.T) {
	// The full battery with the dedicated reclamation goroutine active and
	// aggressive thresholds: commits race the reclaimer constantly.
	txntest.Run(t, func(env txn.Env) (txn.Engine, error) {
		return New(env, Options{BlockSize: 1024, ReclaimThreshold: 512, BackgroundReclaim: true})
	})
}

func TestBackgroundReclaimBoundsLog(t *testing.T) {
	w := txntest.NewWorld(128 << 20)
	env := w.Env(false)
	e, err := New(env, Options{BlockSize: 4096, ReclaimThreshold: 8 << 10, BackgroundReclaim: true})
	if err != nil {
		t.Fatal(err)
	}
	a, _ := w.DataHeap.Alloc(64)
	for i := uint64(0); i < 5000; i++ {
		tx := e.Begin()
		tx.StoreUint64(a, i)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if env.Core.Stats.ReclaimCycles == 0 {
		t.Fatal("background reclaimer never ran")
	}
	// One hot word: the chain must have been kept near the threshold, far
	// below the ~240KB of unreclaimed records.
	if live := e.liveBytes; live > 64<<10 {
		t.Fatalf("live log %dB despite background reclamation", live)
	}
	// Correctness after the daemon raced thousands of commits.
	w.Dev.Crash(sim.NewRand(3))
	e2, _ := New(w.SameEnv(env), Options{})
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if got := w.Dev.NewCore().LoadUint64(a); got != 4999 {
		t.Fatalf("a=%d want 4999", got)
	}
}

func TestBackgroundReclaimCloseIdempotent(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	e, _ := New(w.Env(false), Options{BackgroundReclaim: true})
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}
