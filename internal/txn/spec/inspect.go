package spec

import (
	"fmt"
	"io"
)

// DumpLog writes a human-readable walk of the speculative log chain: every
// block, every record with its commit timestamp and entries, and whether
// each entry is fresh (still the newest committed value of its address,
// per the volatile index) or stale (reclaimable). It is the inspection
// surface behind cmd/specpmt-inspect and is also handy in tests.
func (e *Engine) DumpLog(w io.Writer) {
	e.bgmu.Lock()
	defer e.bgmu.Unlock()
	fmt.Fprintf(w, "speculative log: %d block(s), block size %dB, live %dB, ~%dB stale\n",
		len(e.ch.blocks), e.opt.BlockSize, e.liveBytes, e.staleBytes)
	for i, b := range e.ch.blocks {
		fmt.Fprintf(w, "  block %d @%d incarnation=%d\n", i, b, e.ch.incarn[b])
	}
	records := 0
	e.ch.scanAll(e.env.Core, func(loc recLoc, rec []byte) bool {
		ts, ents := decodeEntries(rec)
		records++
		fmt.Fprintf(w, "  record @%d+%d ts=%d size=%dB entries=%d\n",
			loc.block, loc.off, ts, len(rec), len(ents))
		for _, en := range ents {
			state := "stale"
			if ie, ok := e.index[en.Addr]; ok && ie.rec == loc && ie.valOff == en.ValOff {
				state = "fresh"
			}
			fmt.Fprintf(w, "    addr=%d size=%d %s\n", en.Addr, len(en.Val), state)
		}
		return true
	})
	fmt.Fprintf(w, "  %d committed record(s); index covers %d address(es)\n", records, len(e.index))
}

// IndexSize reports how many addresses the volatile record index covers.
func (e *Engine) IndexSize() int {
	e.bgmu.Lock()
	defer e.bgmu.Unlock()
	return len(e.index)
}

// Blocks reports the current chain length in blocks.
func (e *Engine) Blocks() int {
	e.bgmu.Lock()
	defer e.bgmu.Unlock()
	return len(e.ch.blocks)
}
