package spec

import (
	"bytes"
	"fmt"
	"io"

	"specpmt/internal/pmem"
)

// DumpLog writes a human-readable walk of the speculative log chain: every
// block, every record with its commit timestamp and entries, and whether
// each entry is fresh (still the newest committed value of its address,
// per the volatile index) or stale (reclaimable). It is the inspection
// surface behind cmd/specpmt-inspect and is also handy in tests.
func (e *Engine) DumpLog(w io.Writer) {
	e.bgmu.Lock()
	defer e.bgmu.Unlock()
	fmt.Fprintf(w, "speculative log: %d block(s), block size %dB, live %dB, ~%dB stale\n",
		len(e.ch.blocks), e.opt.BlockSize, e.liveBytes, e.staleBytes)
	for i, b := range e.ch.blocks {
		fmt.Fprintf(w, "  block %d @%d incarnation=%d\n", i, b, e.ch.incarn[b])
	}
	records := 0
	e.ch.scanAll(e.env.Core, func(loc recLoc, rec []byte) bool {
		ts, ents := decodeEntries(rec)
		records++
		fmt.Fprintf(w, "  record @%d+%d ts=%d size=%dB entries=%d\n",
			loc.block, loc.off, ts, len(rec), len(ents))
		for _, en := range ents {
			state := "stale"
			if ie, ok := e.index[en.Addr]; ok && ie.rec == loc && ie.valOff == en.ValOff {
				state = "fresh"
			}
			fmt.Fprintf(w, "    addr=%d size=%d %s\n", en.Addr, len(en.Val), state)
		}
		return true
	})
	fmt.Fprintf(w, "  %d committed record(s); index covers %d address(es)\n", records, len(e.index))
}

// VerifyRecovered is the engine's recovery-invariant checker
// (internal/recovery): it verifies, at any quiesced point (no open
// transaction; after Recover when attached post-crash), that
//
//   - the chain is well formed — the volatile block list matches the
//     persistent next pointers and incarnation stamps, and (when an
//     allocated hook is supplied, typically pmalloc.Heap.Allocated of the
//     log heap) every chain block is live in the allocator;
//   - every index entry points at a committed record and memory holds
//     exactly that entry's value — the index/record/memory agreement that
//     makes speculative recovery correct; and
//   - every committed record entry's address is covered by the index — the
//     coverage invariant PR 7's merged-recovery hole violated: an address
//     recovered from another thread's log must gain a covering record here,
//     or the next crash replays a stale value over it.
func (e *Engine) VerifyRecovered(allocated func(addr pmem.Addr, n int) bool) error {
	e.bgmu.Lock()
	defer e.bgmu.Unlock()
	committed, err := e.verifyLocked(allocated)
	if err != nil {
		return err
	}
	var buf []byte
	for addr, ie := range e.index {
		rec := committed[ie.rec]
		want := rec[ie.valOff : ie.valOff+ie.size]
		if cap(buf) < ie.size {
			buf = make([]byte, ie.size)
		}
		buf = buf[:ie.size]
		e.env.Core.Load(addr, buf)
		if !bytes.Equal(buf, want) {
			return fmt.Errorf("spec: memory at addr %d diverges from its newest committed record (ts %d): got %x, committed %x",
				addr, ie.ts, buf, want)
		}
	}
	for loc, rec := range committed {
		_, ents := decodeEntries(rec)
		for _, en := range ents {
			if _, ok := e.index[en.Addr]; !ok {
				return fmt.Errorf("spec: committed entry for addr %d (block %d off %d) is not covered by the index",
					en.Addr, loc.block, loc.off)
			}
		}
	}
	return nil
}

// verifyLocked checks the per-engine structure — chain well-formedness,
// allocator liveness of every block, and each index entry pointing at a
// committed record with matching timestamp and in-bounds value — and
// returns the committed records by location. It does NOT compare values
// against memory: in a multi-thread pool another engine may hold a newer
// committed value for the same address, so memory agreement is checked by
// the caller at whichever scope owns the newest timestamp. Caller holds
// bgmu.
func (e *Engine) verifyLocked(allocated func(addr pmem.Addr, n int) bool) (map[recLoc][]byte, error) {
	if e.open {
		return nil, fmt.Errorf("spec: VerifyRecovered with a transaction open")
	}
	if e.needsScan {
		return nil, fmt.Errorf("spec: VerifyRecovered before Recover")
	}
	c := e.env.Core
	for i, b := range e.ch.blocks {
		if allocated != nil && !allocated(b, e.opt.BlockSize) {
			return nil, fmt.Errorf("spec: chain block %d @%d is not allocated in the log heap", i, b)
		}
		if inc := c.LoadUint64(b + 8); inc != e.ch.incarn[b] {
			return nil, fmt.Errorf("spec: chain block %d @%d incarnation %d, volatile view has %d", i, b, inc, e.ch.incarn[b])
		}
		var wantNext pmem.Addr
		if i+1 < len(e.ch.blocks) {
			wantNext = e.ch.blocks[i+1]
		}
		if next := pmem.Addr(c.LoadUint64(b)); next != wantNext {
			return nil, fmt.Errorf("spec: chain block %d @%d next pointer %d, volatile view has %d", i, b, next, wantNext)
		}
	}
	committed := map[recLoc][]byte{}
	e.ch.scanAll(c, func(loc recLoc, rec []byte) bool {
		committed[loc] = rec
		return true
	})
	for addr, ie := range e.index {
		rec, ok := committed[ie.rec]
		if !ok {
			return nil, fmt.Errorf("spec: index entry for addr %d points at no committed record (block %d off %d)",
				addr, ie.rec.block, ie.rec.off)
		}
		if ie.valOff < recHeader || ie.valOff+ie.size > len(rec)-recFooter {
			return nil, fmt.Errorf("spec: index entry for addr %d has value [%d:%d) outside record of %d bytes",
				addr, ie.valOff, ie.valOff+ie.size, len(rec))
		}
		// Recovery's coverage records pack many cells into one record
		// stamped with the group's max timestamp while the index keeps
		// each cell's own; an index entry NEWER than its record, though,
		// points at a value that cannot be the one it claims.
		if ts := getU64(rec, 8); ie.ts > ts {
			return nil, fmt.Errorf("spec: index entry for addr %d stamped ts %d, newer than its record's ts %d", addr, ie.ts, ts)
		}
	}
	return committed, nil
}

// IndexSize reports how many addresses the volatile record index covers.
func (e *Engine) IndexSize() int {
	e.bgmu.Lock()
	defer e.bgmu.Unlock()
	return len(e.index)
}

// Blocks reports the current chain length in blocks.
func (e *Engine) Blocks() int {
	e.bgmu.Lock()
	defer e.bgmu.Unlock()
	return len(e.ch.blocks)
}
