// Package kamino implements the Kamino-Tx persistent transaction model
// (Memaripour et al., EuroSys'17) as configured in the SpecPMT paper's
// evaluation (§7.1.2): a state-of-the-art in-place update transaction that
// keeps a backup copy of the data region and logs only the *addresses* of
// write intents. Each address record must persist — flush plus fence —
// before the corresponding main-copy data update; at commit the updated data
// is flushed and fenced and the address log invalidated.
//
// Following the paper, the main-copy-to-backup copying is omitted from the
// measured costs ("our experiments correspond to Kamino-Tx's upper bound in
// performance"): the backup copy here is maintained through the device's
// zero-cost PokePersisted modeling hook. Recovery restores every logged
// address from the backup copy.
package kamino

import (
	"encoding/binary"
	"errors"
	"fmt"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
)

const (
	magic = 0x4b414d494e4f5458 // "KAMINOTX"

	offMagic     = 0
	offLogArea   = 8
	offLogCap    = 16
	offActiveGen = 24
	offBackup    = 32
	offDataStart = 40
	offDataEnd   = 48

	recSize = 8 + 4 + 4 + 8 // addr, size, gen, checksum
)

// ErrLogFull is returned when a transaction exceeds the address log.
var ErrLogFull = errors.New("kamino: address log full")

// Options configures the engine.
type Options struct {
	// LogCap is the address-log capacity in bytes (default 1 MiB).
	LogCap int
}

// Engine is the Kamino-Tx engine.
type Engine struct {
	env       txn.Env
	logArea   pmem.Addr
	logCap    int
	backup    pmem.Addr
	dataStart pmem.Addr
	dataEnd   pmem.Addr
	open      bool

	// cur is the reusable transaction object (one open tx per engine) and
	// scratch the range staging buffer shared by backup sync and restore.
	cur     tx
	scratch []byte
}

// scratchBuf returns an n-byte staging buffer, growing the shared scratch
// allocation only when a larger range appears.
func (e *Engine) scratchBuf(n int) []byte {
	if cap(e.scratch) < n {
		e.scratch = make([]byte, n)
	}
	return e.scratch[:n]
}

func init() {
	txn.Register("Kamino-Tx", func(env txn.Env) (txn.Engine, error) { return New(env, Options{}) })
}

// New attaches to (or initialises) a Kamino engine at env.Root. The backup
// region mirrors the data heap's full range and is allocated from the log
// heap on first initialisation.
func New(env txn.Env, opt Options) (*Engine, error) {
	if opt.LogCap == 0 {
		opt.LogCap = 1 << 20
	}
	e := &Engine{env: env}
	c := env.Core
	if c.LoadUint64(env.Root+offMagic) == magic {
		e.logArea = pmem.Addr(c.LoadUint64(env.Root + offLogArea))
		e.logCap = int(c.LoadUint64(env.Root + offLogCap))
		e.backup = pmem.Addr(c.LoadUint64(env.Root + offBackup))
		e.dataStart = pmem.Addr(c.LoadUint64(env.Root + offDataStart))
		e.dataEnd = pmem.Addr(c.LoadUint64(env.Root + offDataEnd))
		return e, nil
	}
	area, err := env.LogHeap.Alloc(opt.LogCap)
	if err != nil {
		return nil, fmt.Errorf("kamino: allocating log area: %w", err)
	}
	ds, de := env.Heap.Bounds()
	backup, err := env.LogHeap.Alloc(int(de - ds))
	if err != nil {
		return nil, fmt.Errorf("kamino: allocating backup copy: %w", err)
	}
	e.logArea, e.logCap = area, opt.LogCap
	e.backup, e.dataStart, e.dataEnd = backup, ds, de
	c.StoreUint64(env.Root+offLogArea, uint64(area))
	c.StoreUint64(env.Root+offLogCap, uint64(opt.LogCap))
	c.StoreUint64(env.Root+offActiveGen, 0)
	c.StoreUint64(env.Root+offBackup, uint64(backup))
	c.StoreUint64(env.Root+offDataStart, uint64(ds))
	c.StoreUint64(env.Root+offDataEnd, uint64(de))
	c.StoreUint64(env.Root+offMagic, magic)
	c.PersistBarrier(env.Root, txn.RootSize, pmem.KindLog)
	return e, nil
}

// Name implements txn.Engine.
func (e *Engine) Name() string { return "Kamino-Tx" }

// Close implements txn.Engine.
func (e *Engine) Close() error { return nil }

// Begin implements txn.Engine.
func (e *Engine) Begin() txn.Tx {
	if e.open {
		panic("kamino: engine supports one open transaction per core")
	}
	e.open = true
	c := e.env.Core
	gen := e.env.TS.Next()
	c.Stats.TxBegun++
	c.TraceTxBegin()
	c.StoreUint64(e.env.Root+offActiveGen, gen)
	c.PersistBarrier(e.env.Root+offActiveGen, 8, pmem.KindLog)
	t := &e.cur
	if t.e == nil {
		t.e = e
		t.ws = txn.NewWriteSet()
	}
	t.reset(gen)
	return t
}

type tx struct {
	e    *Engine
	gen  uint64
	ws   *txn.WriteSet
	tail int
	done bool
	err  error
}

// reset readies the reusable tx for a new transaction generation.
func (t *tx) reset(gen uint64) {
	t.gen = gen
	t.ws.Reset()
	t.tail = 0
	t.done = false
	t.err = nil
}

// Load implements txn.Tx.
func (t *tx) Load(addr pmem.Addr, buf []byte) { t.e.env.Core.Load(addr, buf) }

// LoadUint64 implements txn.Tx.
func (t *tx) LoadUint64(addr pmem.Addr) uint64 { return t.e.env.Core.LoadUint64(addr) }

// Compute implements txn.Tx.
func (t *tx) Compute(ns int64) { t.e.env.Core.Compute(ns) }

// StoreUint64 implements txn.Tx.
func (t *tx) StoreUint64(addr pmem.Addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	t.Store(addr, b[:])
}

// Store implements txn.Tx: persist the address record, then update in place.
// Kamino-Tx "does not avoid the fences for ensuring address persistence
// before a main-copy data update" (§8) — that fence is charged here.
func (t *tx) Store(addr pmem.Addr, data []byte) {
	if t.done {
		panic("kamino: use of finished transaction")
	}
	c := t.e.env.Core
	needLog := true
	if i, seen := t.ws.Seen(addr); seen && t.ws.Ranges()[i].Size >= len(data) {
		needLog = false
	}
	if needLog {
		if err := t.appendRecord(addr, len(data)); err != nil {
			t.err = err
			return
		}
	}
	t.ws.Add(addr, len(data))
	c.Store(addr, data)
}

func (t *tx) appendRecord(addr pmem.Addr, size int) error {
	e := t.e
	c := e.env.Core
	if t.tail+recSize > e.logCap {
		return ErrLogFull
	}
	// Light write-intent bookkeeping (the paper's own lean implementation).
	c.Compute(200)
	var buf [recSize]byte
	binary.LittleEndian.PutUint64(buf[0:], uint64(addr))
	binary.LittleEndian.PutUint32(buf[8:], uint32(size))
	binary.LittleEndian.PutUint32(buf[12:], uint32(t.gen))
	binary.LittleEndian.PutUint64(buf[16:], txn.Checksum64(buf[:16]))
	at := e.logArea + pmem.Addr(t.tail)
	c.Store(at, buf[:])
	c.PersistBarrier(at, recSize, pmem.KindLog)
	t.tail += recSize
	c.Stats.LogRecords++
	c.Stats.AddLiveLog(recSize)
	c.TraceLogAppend(recSize)
	return nil
}

// Commit implements txn.Tx. Kamino-Tx keeps data persistence asynchronous
// (§8: "they do in-place data updates while keeping asynchronous data
// persistence"): the updated lines are written back without a commit-path
// fence — they drain through the shared memory controller in the background,
// competing with the next transaction's log barriers — and only the log
// invalidation is fenced.
func (t *tx) Commit() error {
	if t.done {
		return errors.New("kamino: transaction already finished")
	}
	t.done = true
	t.e.open = false
	c := t.e.env.Core
	if t.err != nil {
		t.restoreFromBackup()
		c.Stats.AddLiveLog(-int64(t.tail))
		c.TraceTxAbort()
		return t.err
	}
	commitStart := c.Now()
	for _, l := range t.ws.Lines() {
		c.Flush(pmem.Addr(l*pmem.LineSize), pmem.LineSize, pmem.KindData)
	}
	c.StoreUint64(t.e.env.Root+offActiveGen, 0)
	c.PersistBarrier(t.e.env.Root+offActiveGen, 8, pmem.KindLog)
	// Background main-to-backup propagation, modeled at zero cost (upper
	// bound per the paper).
	t.e.syncBackup(t.ws)
	c.Stats.TxCommitted++
	c.Stats.AddLiveLog(-int64(t.tail))
	c.TraceLiveLog()
	c.TraceTxCommit(commitStart, t.ws.Len(), 0)
	return nil
}

// Abort implements txn.Tx: restore every logged range from the backup.
func (t *tx) Abort() error {
	if t.done {
		return errors.New("kamino: transaction already finished")
	}
	t.done = true
	t.e.open = false
	t.restoreFromBackup()
	t.e.env.Core.Stats.TxAborted++
	t.e.env.Core.Stats.AddLiveLog(-int64(t.tail))
	t.e.env.Core.TraceTxAbort()
	return nil
}

func (t *tx) restoreFromBackup() {
	c := t.e.env.Core
	for _, r := range t.ws.Ranges() {
		buf := t.e.scratchBuf(r.Size)
		c.Load(t.e.backupAddr(r.Addr), buf)
		c.Store(r.Addr, buf)
		c.Flush(r.Addr, r.Size, pmem.KindData)
	}
	c.Fence()
	c.StoreUint64(t.e.env.Root+offActiveGen, 0)
	c.PersistBarrier(t.e.env.Root+offActiveGen, 8, pmem.KindLog)
}

func (e *Engine) backupAddr(a pmem.Addr) pmem.Addr {
	if a < e.dataStart || a >= e.dataEnd {
		panic(fmt.Sprintf("kamino: address %d outside data region [%d,%d)", a, e.dataStart, e.dataEnd))
	}
	return e.backup + (a - e.dataStart)
}

// syncBackup propagates committed values to the backup copy at zero modeled
// cost.
func (e *Engine) syncBackup(ws *txn.WriteSet) {
	for _, r := range ws.Ranges() {
		buf := e.scratchBuf(r.Size)
		e.env.Core.LoadRaw(r.Addr, buf)
		e.env.Dev.PokePersisted(e.backupAddr(r.Addr), buf)
	}
}

// Recover implements txn.Engine: restore the data region from the backup
// copy, which always holds the last committed state — Kamino-Tx's recovery
// story ("on a crash, Kamino-Tx recovers the corrupted data from the backup
// copy", §8). The interrupted transaction's address log identifies the
// minimal corrupted set in the real system; with a full backup available
// the copy-back is performed wholesale here, which is strictly more
// conservative.
func (e *Engine) Recover() error {
	c := e.env.Core
	recoverStart := c.Now()
	defer func() { c.TraceRecoverSpan(recoverStart) }()
	// Like the backup maintenance, the copy-back is modeled at zero cost
	// (recovery latency is not part of any measured experiment; the paper's
	// upper-bound treatment of Kamino-Tx extends to it).
	const chunk = 1 << 16
	buf := make([]byte, chunk)
	for a := e.dataStart; a < e.dataEnd; a += chunk {
		n := chunk
		if rem := int(e.dataEnd - a); rem < n {
			n = rem
		}
		c.LoadRaw(e.backupAddr(a), buf[:n])
		e.env.Dev.PokePersisted(a, buf[:n])
	}
	c.StoreUint64(e.env.Root+offActiveGen, 0)
	c.PersistBarrier(e.env.Root+offActiveGen, 8, pmem.KindLog)
	return nil
}
