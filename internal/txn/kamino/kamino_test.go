package kamino

import (
	"testing"

	"specpmt/internal/pmem"
	"specpmt/internal/sim"
	"specpmt/internal/txn"
	"specpmt/internal/txn/txntest"
)

func factory(env txn.Env) (txn.Engine, error) { return New(env, Options{}) }

func TestConformance(t *testing.T) {
	txntest.Run(t, factory)
}

func TestAddressOnlyLogIsSmall(t *testing.T) {
	// Kamino logs addresses, not values: the log footprint per update is
	// constant regardless of the write size.
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, err := New(env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	a, _ := w.DataHeap.Alloc(4096)
	big := make([]byte, 1024)
	before := env.Core.Stats.PMLogBytes
	tx := e.Begin()
	tx.Store(a, big)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Begin marker + one 24-byte address record + invalidate marker: three
	// log lines. The 1 KiB value itself is data traffic, not log traffic.
	if got := env.Core.Stats.PMLogBytes - before; got > 3*pmem.LineSize {
		t.Fatalf("address log traffic too large: %d bytes", got)
	}
	if env.Core.Stats.PMDataBytes < 1024 {
		t.Fatalf("data traffic should cover the 1KiB value: %d", env.Core.Stats.PMDataBytes)
	}
}

func TestFencePerUpdateLikeUndo(t *testing.T) {
	// Kamino does not avoid the per-update fence (§8): same fence count
	// shape as undo logging.
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{})
	defer e.Close()
	addrs := make([]pmem.Addr, 8)
	for i := range addrs {
		addrs[i], _ = w.DataHeap.Alloc(64)
	}
	before := env.Core.Stats.Fences
	tx := e.Begin()
	for _, a := range addrs {
		tx.StoreUint64(a, 1)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// begin + 8 address barriers + log invalidate; data persistence is
	// asynchronous (no commit-path data fence).
	if got := env.Core.Stats.Fences - before; got != 10 {
		t.Fatalf("fences = %d, want 10", got)
	}
}

func TestBackupTracksCommits(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	for v := uint64(1); v <= 3; v++ {
		tx := e.Begin()
		tx.StoreUint64(a, v)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	var buf [8]byte
	env.Core.Load(e.backupAddr(a), buf[:])
	if got := env.Core.LoadUint64(e.backupAddr(a)); got != 3 {
		t.Fatalf("backup = %d, want 3", got)
	}
}

func TestOutsideDataRegionPanics(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{})
	defer e.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("store outside the mirrored data region should panic")
		}
	}()
	tx := e.Begin()
	tx.StoreUint64(10, 1) // inside the root page, not the data heap
	tx.Commit()
}

func TestRegisteredName(t *testing.T) {
	w := txntest.NewWorld(64 << 20)
	e, err := txn.New("Kamino-Tx", w.Env(false))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Name() != "Kamino-Tx" {
		t.Fatalf("name = %q", e.Name())
	}
}

func TestRecoverOnGarbageLogNeverPanics(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		w := txntest.NewWorld(64 << 20)
		env := w.Env(false)
		e, err := New(env, Options{LogCap: 2048})
		if err != nil {
			t.Fatal(err)
		}
		// Pretend a transaction is active, scribble the address log.
		env.Core.StoreUint64(env.Root+offActiveGen, seed+1)
		rng := sim.NewRand(seed)
		garbage := make([]byte, 2048)
		for i := range garbage {
			garbage[i] = byte(rng.Uint64())
		}
		env.Core.Store(e.logArea, garbage)
		func() {
			defer func() {
				if recover() != nil {
					t.Fatalf("seed %d: kamino recovery panicked on garbage", seed)
				}
			}()
			if err := e.Recover(); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}()
		e.Close()
	}
}

func TestBackupRestoreIsWholesale(t *testing.T) {
	// Kamino recovery restores the last committed state for the whole data
	// region from the backup copy, even for addresses the interrupted
	// transaction never logged.
	w := txntest.NewWorld(64 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{})
	a, _ := w.DataHeap.Alloc(64)
	b, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	tx.StoreUint64(a, 5)
	tx.StoreUint64(b, 6)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Corrupt b in the persistence domain directly (simulating a stray
	// uncommitted eviction the address log missed).
	w.Dev.PokePersisted(b, []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	e.Close()
	w.Dev.CrashClean()
	e2, _ := New(w.SameEnv(env), Options{})
	if err := e2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	c := w.Dev.NewCore()
	if got := c.LoadUint64(b); got != 6 {
		t.Fatalf("b=%d want 6 (wholesale backup restore)", got)
	}
}
