package txn

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"

	"specpmt/internal/pmem"
)

func TestTimestampMonotonicConcurrent(t *testing.T) {
	var ts Timestamp
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	seen := make([][]uint64, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seen[w] = append(seen[w], ts.Next())
			}
		}()
	}
	wg.Wait()
	all := map[uint64]bool{}
	for _, s := range seen {
		prev := uint64(0)
		for _, v := range s {
			if v <= prev {
				t.Fatal("per-goroutine timestamps not increasing")
			}
			prev = v
			if all[v] {
				t.Fatalf("duplicate timestamp %d", v)
			}
			all[v] = true
		}
	}
	if ts.Last() != workers*per {
		t.Fatalf("Last=%d want %d", ts.Last(), workers*per)
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	f := func(data []byte, flip uint16) bool {
		if len(data) == 0 {
			return true
		}
		sum := Checksum64(data)
		mut := bytes.Clone(data)
		mut[int(flip)%len(mut)] ^= 0x01
		return Checksum64(mut) != sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChecksumNeverZero(t *testing.T) {
	if Checksum64(nil) == 0 || Checksum64([]byte{0, 0, 0}) == 0 {
		t.Fatal("checksum must never be zero (zero marks unwritten records)")
	}
}

func TestChecksumDeterministic(t *testing.T) {
	a := Checksum64([]byte("hello"))
	b := Checksum64([]byte("hello"))
	if a != b {
		t.Fatal("checksum not deterministic")
	}
}

func TestWriteSetLines(t *testing.T) {
	w := NewWriteSet()
	w.Add(0, 8)
	w.Add(60, 8) // spans lines 0 and 1
	w.Add(200, 4)
	lines := w.Lines()
	want := []uint64{0, 1, 3}
	if len(lines) != len(want) {
		t.Fatalf("lines=%v want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("lines=%v want %v", lines, want)
		}
	}
}

func TestWriteSetSeen(t *testing.T) {
	w := NewWriteSet()
	w.Add(100, 8)
	w.Add(200, 8)
	w.Add(100, 8)
	if i, ok := w.Seen(100); !ok || i != 2 {
		t.Fatalf("Seen(100)=%d,%v want 2,true", i, ok)
	}
	if _, ok := w.Seen(300); ok {
		t.Fatal("Seen(300) should be false")
	}
	if w.Len() != 3 || w.Bytes() != 24 {
		t.Fatalf("Len=%d Bytes=%d", w.Len(), w.Bytes())
	}
}

func TestWriteSetReset(t *testing.T) {
	w := NewWriteSet()
	w.Add(0, 64)
	w.Reset()
	if w.Len() != 0 || len(w.Lines()) != 0 {
		t.Fatal("reset did not clear write set")
	}
	if _, ok := w.Seen(0); ok {
		t.Fatal("reset did not clear byAddr index")
	}
}

func TestWriteSetLinesMatchBruteForce(t *testing.T) {
	f := func(addrs []uint16, size uint8) bool {
		w := NewWriteSet()
		n := int(size)%100 + 1
		brute := map[uint64]bool{}
		for _, a := range addrs {
			w.Add(pmem.Addr(a), n)
			for i := 0; i < n; i++ {
				brute[pmem.LineOf(pmem.Addr(a)+pmem.Addr(i))] = true
			}
		}
		return len(w.Lines()) == len(brute)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRegistry(t *testing.T) {
	names := Engines()
	for _, n := range names {
		if n == "" {
			t.Fatal("empty engine name registered")
		}
	}
	if _, err := New("no-such-engine", Env{}); err == nil {
		t.Fatal("unknown engine should error")
	}
}
