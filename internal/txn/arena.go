package txn

// Arena is a bump allocator for the short-lived byte copies a transaction
// makes (logged values, old values for fast abort). It hands out sub-slices
// of one chunk and is truncated wholesale between transactions; when a chunk
// fills, a larger one replaces it — slices handed out earlier keep the old
// backing array alive until the next Reset, after which steady state is
// allocation-free. Engines embed one per reusable transaction object so
// their Store hot paths stop touching the Go heap once the arena reaches
// its high-water capacity.
type Arena struct{ buf []byte }

// Reset truncates the arena, invalidating (for reuse) every slice handed
// out since the previous Reset.
func (a *Arena) Reset() { a.buf = a.buf[:0] }

// Grab returns a length-n slice carved from the arena. The slice is full —
// its capacity is clipped to n — so appends by the caller cannot clobber a
// neighbouring grab.
func (a *Arena) Grab(n int) []byte {
	if cap(a.buf)-len(a.buf) < n {
		c := 2 * cap(a.buf)
		if c < 4096 {
			c = 4096
		}
		if c < n {
			c = n
		}
		a.buf = make([]byte, 0, c)
	}
	s := a.buf[len(a.buf) : len(a.buf)+n : len(a.buf)+n]
	a.buf = a.buf[:len(a.buf)+n]
	return s
}
