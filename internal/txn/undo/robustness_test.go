package undo

import (
	"testing"
	"testing/quick"

	"specpmt/internal/txn/txntest"
)

func TestRecoverOnGarbageLogNeverPanics(t *testing.T) {
	f := func(garbage []byte, gen uint16) bool {
		w := txntest.NewWorld(32 << 20)
		env := w.Env(false)
		e, err := New(env, Options{LogCap: 4096})
		if err != nil {
			t.Fatal(err)
		}
		defer e.Close()
		// Pretend a transaction was active and scribble the log area.
		env.Core.StoreUint64(env.Root+offActiveGen, uint64(gen)+1)
		n := len(garbage)
		if n > 4096 {
			n = 4096
		}
		if n > 0 {
			env.Core.Store(e.logArea, garbage[:n])
		}
		defer func() {
			if recover() != nil {
				t.Error("undo recovery panicked on garbage log")
			}
		}()
		if err := e.Recover(); err != nil {
			t.Errorf("recover errored: %v", err)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAbortRestoresReverseOrder(t *testing.T) {
	// Overlapping line-granular snapshots must unwind newest-first.
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(128)
	tx := e.Begin()
	tx.StoreUint64(a, 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = e.Begin()
	tx.StoreUint64(a, 2)
	tx.StoreUint64(a+8, 3) // same line: second snapshot sees value 2 at a
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := env.Core.LoadUint64(a); got != 1 {
		t.Fatalf("a=%d after abort, want 1 (reverse-order rollback)", got)
	}
	if got := env.Core.LoadUint64(a + 8); got != 0 {
		t.Fatalf("a+8=%d after abort, want 0", got)
	}
}

func TestLineGranularSnapshotRestoresNeighbours(t *testing.T) {
	// PMDK-style line-granular records capture neighbouring bytes in the
	// same line; rollback must restore them intact.
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64) // one line: words a+0, a+8 share it
	tx := e.Begin()
	tx.StoreUint64(a, 11)
	tx.StoreUint64(a+8, 22)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = e.Begin()
	tx.StoreUint64(a, 99) // snapshot covers the whole line incl a+8
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if env.Core.LoadUint64(a) != 11 || env.Core.LoadUint64(a+8) != 22 {
		t.Fatal("line-granular rollback corrupted the neighbouring word")
	}
}
