// Package undo implements the classical undo-logging persistent memory
// transaction, the PMDK-style baseline of the paper's software evaluation
// (§7.1.2). For every location a transaction updates, the old value is
// logged and the log record persisted — flush plus fence — *before* the
// in-place data write, exactly the left-hand timeline of Figure 2. At commit
// the updated data is flushed and fenced, and the log is invalidated with
// one more persist barrier.
//
// The per-update persist barrier is the cost SpecPMT eliminates; this engine
// exists so the evaluation can measure that cost.
package undo

import (
	"encoding/binary"
	"errors"
	"fmt"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
)

const (
	magic = 0x554e444f4c4f4731 // "UNDOLOG1"

	// Root layout: [magic 8][logArea 8][logCap 8][activeGen 8]
	offMagic     = 0
	offLogArea   = 8
	offLogCap    = 16
	offActiveGen = 24

	recHeader = 8 + 4 + 4 // addr, size, genLo
	recFooter = 8         // checksum
)

// ErrLogFull is returned by Store when the transaction exceeds the log area.
var ErrLogFull = errors.New("undo: log area full")

// Options configures the engine.
type Options struct {
	// LogCap is the log area capacity in bytes (default 4 MiB).
	LogCap int
	// TxAddNs models PMDK's software bookkeeping per logged range (range
	// tracking, log slot management) on top of the memory operations — a
	// well-documented cost of the real library (default 1200 ns; set
	// negative to disable).
	TxAddNs int64
}

// Engine is the undo-logging engine.
type Engine struct {
	env     txn.Env
	logArea pmem.Addr
	logCap  int
	txAddNs int64
	open    bool

	// cur is the reusable transaction object (one open tx per engine) and
	// recBuf the log-record staging buffer, recycled across transactions.
	cur    tx
	recBuf []byte
}

func init() {
	txn.Register("PMDK", func(env txn.Env) (txn.Engine, error) { return New(env, Options{}) })
}

// New attaches to (or initialises) an undo engine at env.Root.
func New(env txn.Env, opt Options) (*Engine, error) {
	if opt.LogCap == 0 {
		opt.LogCap = 4 << 20
	}
	if opt.TxAddNs == 0 {
		opt.TxAddNs = 1200
	}
	if opt.TxAddNs < 0 {
		opt.TxAddNs = 0
	}
	e := &Engine{env: env, txAddNs: opt.TxAddNs}
	c := env.Core
	if c.LoadUint64(env.Root+offMagic) == magic {
		e.logArea = pmem.Addr(c.LoadUint64(env.Root + offLogArea))
		e.logCap = int(c.LoadUint64(env.Root + offLogCap))
		return e, nil
	}
	area, err := env.LogHeap.Alloc(opt.LogCap)
	if err != nil {
		return nil, fmt.Errorf("undo: allocating log area: %w", err)
	}
	e.logArea = area
	e.logCap = opt.LogCap
	c.StoreUint64(env.Root+offLogArea, uint64(area))
	c.StoreUint64(env.Root+offLogCap, uint64(opt.LogCap))
	c.StoreUint64(env.Root+offActiveGen, 0)
	c.StoreUint64(env.Root+offMagic, magic)
	c.PersistBarrier(env.Root, txn.RootSize, pmem.KindLog)
	return e, nil
}

// Name implements txn.Engine.
func (e *Engine) Name() string { return "PMDK" }

// Close implements txn.Engine.
func (e *Engine) Close() error { return nil }

// Begin implements txn.Engine.
func (e *Engine) Begin() txn.Tx {
	if e.open {
		panic("undo: engine supports one open transaction per core")
	}
	e.open = true
	c := e.env.Core
	gen := e.env.TS.Next()
	c.Stats.TxBegun++
	c.TraceTxBegin()
	// Publish the active generation before any logging so that recovery can
	// tell live records from residue of earlier transactions.
	c.StoreUint64(e.env.Root+offActiveGen, gen)
	c.PersistBarrier(e.env.Root+offActiveGen, 8, pmem.KindLog)
	t := &e.cur
	if t.e == nil {
		t.e = e
		t.ws = txn.NewWriteSet()
	}
	t.reset(gen)
	return t
}

type tx struct {
	e    *Engine
	gen  uint64
	ws   *txn.WriteSet
	tail int // bytes used in log area
	done bool
	err  error
	// undo keeps a volatile copy of (addr, old bytes) for Abort; the copies
	// live in the tx arena.
	undo  []undoEnt
	arena txn.Arena
}

type undoEnt struct {
	addr pmem.Addr
	old  []byte
}

// reset readies the reusable tx for a new transaction generation, keeping
// the write-set, undo slice, and arena capacity warm.
func (t *tx) reset(gen uint64) {
	t.gen = gen
	t.ws.Reset()
	t.tail = 0
	t.done = false
	t.err = nil
	t.undo = t.undo[:0]
	t.arena.Reset()
}

// Load implements txn.Tx; undo logging reads in place.
func (t *tx) Load(addr pmem.Addr, buf []byte) { t.e.env.Core.Load(addr, buf) }

// LoadUint64 implements txn.Tx.
func (t *tx) LoadUint64(addr pmem.Addr) uint64 { return t.e.env.Core.LoadUint64(addr) }

// Compute implements txn.Tx.
func (t *tx) Compute(ns int64) { t.e.env.Core.Compute(ns) }

// StoreUint64 implements txn.Tx.
func (t *tx) StoreUint64(addr pmem.Addr, v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	t.Store(addr, b[:])
}

// Store implements txn.Tx: log old value, persist the record, then update in
// place.
func (t *tx) Store(addr pmem.Addr, data []byte) {
	if t.done {
		panic("undo: use of finished transaction")
	}
	c := t.e.env.Core
	logged := false
	if i, seen := t.ws.Seen(addr); seen && t.ws.Ranges()[i].Size >= len(data) {
		logged = true // old value of the full range is already on the log
	}
	if !logged {
		if err := t.appendRecord(addr, len(data)); err != nil {
			t.err = err
			return
		}
	}
	t.ws.Add(addr, len(data))
	c.Store(addr, data)
}

// appendRecord writes and persists one undo record covering the cache lines
// of [addr, addr+size). PMDK snapshots at coarse granularity (TX_ADD takes
// object ranges, and flushing works in 64-byte lines), so the logged old
// value is the full spanned lines — the write-amplification that is part of
// the undo-logging cost the paper measures.
func (t *tx) appendRecord(addr pmem.Addr, size int) error {
	e := t.e
	c := e.env.Core
	first := pmem.LineOf(addr)
	last := pmem.LineOf(addr + pmem.Addr(size-1))
	addr = pmem.Addr(first * pmem.LineSize)
	size = int(last-first+1) * pmem.LineSize
	recLen := recHeader + size + recFooter
	if t.tail+recLen > e.logCap {
		return ErrLogFull
	}
	c.Compute(e.txAddNs)
	if cap(e.recBuf) < recLen {
		e.recBuf = make([]byte, recLen)
	}
	buf := e.recBuf[:recLen]
	binary.LittleEndian.PutUint64(buf[0:], uint64(addr))
	binary.LittleEndian.PutUint32(buf[8:], uint32(size))
	binary.LittleEndian.PutUint32(buf[12:], uint32(t.gen))
	// Old value read from the data area before the in-place update.
	c.Load(addr, buf[recHeader:recHeader+size])
	old := t.arena.Grab(size)
	copy(old, buf[recHeader:recHeader+size])
	t.undo = append(t.undo, undoEnt{addr, old})
	sum := txn.Checksum64(buf[:recHeader+size])
	binary.LittleEndian.PutUint64(buf[recHeader+size:], sum)
	at := e.logArea + pmem.Addr(t.tail)
	c.Store(at, buf)
	// The persist barrier after each log append is the defining cost of
	// undo logging (Figure 2, left).
	c.PersistBarrier(at, recLen, pmem.KindLog)
	t.tail += recLen
	c.Stats.LogRecords++
	c.Stats.AddLiveLog(int64(recLen))
	c.TraceLogAppend(recLen)
	return nil
}

// Commit implements txn.Tx.
func (t *tx) Commit() error {
	if t.done {
		return errors.New("undo: transaction already finished")
	}
	t.done = true
	t.e.open = false
	if t.err != nil {
		t.rollback()
		t.e.env.Core.TraceTxAbort()
		return t.err
	}
	c := t.e.env.Core
	commitStart := c.Now()
	// Persist all updated data.
	for _, l := range t.ws.Lines() {
		c.Flush(pmem.Addr(l*pmem.LineSize), pmem.LineSize, pmem.KindData)
	}
	c.Fence()
	// Invalidate the log.
	c.StoreUint64(t.e.env.Root+offActiveGen, 0)
	c.PersistBarrier(t.e.env.Root+offActiveGen, 8, pmem.KindLog)
	c.Stats.TxCommitted++
	c.Stats.AddLiveLog(-int64(t.tail))
	c.TraceLiveLog()
	c.TraceTxCommit(commitStart, t.ws.Len(), 0)
	return nil
}

// Abort implements txn.Tx: roll back in-place updates from the volatile undo
// copies, persist the restored values, then invalidate the log.
func (t *tx) Abort() error {
	if t.done {
		return errors.New("undo: transaction already finished")
	}
	t.done = true
	t.e.open = false
	t.rollback()
	t.e.env.Core.Stats.TxAborted++
	t.e.env.Core.TraceTxAbort()
	return nil
}

// rollback restores the old values recorded so far, persists them, and
// invalidates the log.
func (t *tx) rollback() {
	c := t.e.env.Core
	for i := len(t.undo) - 1; i >= 0; i-- {
		u := t.undo[i]
		c.Store(u.addr, u.old)
		c.Flush(u.addr, len(u.old), pmem.KindData)
	}
	c.Fence()
	c.StoreUint64(t.e.env.Root+offActiveGen, 0)
	c.PersistBarrier(t.e.env.Root+offActiveGen, 8, pmem.KindLog)
	c.Stats.AddLiveLog(-int64(t.tail))
}

// Recover implements txn.Engine: if a transaction was active at the crash,
// apply its undo records in reverse order and invalidate the log.
func (e *Engine) Recover() error {
	c := e.env.Core
	recoverStart := c.Now()
	defer func() { c.TraceRecoverSpan(recoverStart) }()
	gen := c.LoadUint64(e.env.Root + offActiveGen)
	if gen == 0 {
		return nil // no transaction in flight
	}
	type rec struct {
		addr pmem.Addr
		old  []byte
	}
	var recs []rec
	off := 0
	for off+recHeader+recFooter <= e.logCap {
		hdr := make([]byte, recHeader)
		c.Load(e.logArea+pmem.Addr(off), hdr)
		addr := pmem.Addr(binary.LittleEndian.Uint64(hdr[0:]))
		size := int(binary.LittleEndian.Uint32(hdr[8:]))
		rgen := binary.LittleEndian.Uint32(hdr[12:])
		if size == 0 || rgen != uint32(gen) || off+recHeader+size+recFooter > e.logCap {
			break
		}
		body := make([]byte, recHeader+size+recFooter)
		c.Load(e.logArea+pmem.Addr(off), body)
		sum := binary.LittleEndian.Uint64(body[recHeader+size:])
		if txn.Checksum64(body[:recHeader+size]) != sum {
			break // torn record: it never persisted fully, so its data write
			// never happened either (the barrier orders them)
		}
		recs = append(recs, rec{addr, body[recHeader : recHeader+size]})
		off += recHeader + size + recFooter
	}
	for i := len(recs) - 1; i >= 0; i-- {
		c.Store(recs[i].addr, recs[i].old)
		c.Flush(recs[i].addr, len(recs[i].old), pmem.KindData)
	}
	c.Fence()
	c.StoreUint64(e.env.Root+offActiveGen, 0)
	c.PersistBarrier(e.env.Root+offActiveGen, 8, pmem.KindLog)
	return nil
}
