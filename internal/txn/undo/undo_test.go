package undo

import (
	"testing"

	"specpmt/internal/pmem"
	"specpmt/internal/txn"
	"specpmt/internal/txn/txntest"
)

func factory(env txn.Env) (txn.Engine, error) { return New(env, Options{}) }

func TestConformance(t *testing.T) {
	txntest.Run(t, factory)
}

func TestFencePerUpdate(t *testing.T) {
	// Undo logging's defining cost: one persist barrier per first update of
	// a location, plus begin, data, and invalidate barriers.
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, err := New(env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	addrs := make([]pmem.Addr, 10)
	for i := range addrs {
		addrs[i], _ = w.DataHeap.Alloc(64)
	}
	before := env.Core.Stats.Fences
	tx := e.Begin()
	for _, a := range addrs {
		tx.StoreUint64(a, 1)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	fences := env.Core.Stats.Fences - before
	// begin(1) + 10 updates(10) + data(1) + invalidate(1) = 13
	if fences != 13 {
		t.Fatalf("fences per tx = %d, want 13", fences)
	}
}

func TestRepeatedUpdateLogsOnce(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, _ := New(env, Options{})
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	for i := 0; i < 5; i++ {
		tx.StoreUint64(a, uint64(i))
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if env.Core.Stats.LogRecords != 1 {
		t.Fatalf("log records = %d, want 1 (write-set indexing)", env.Core.Stats.LogRecords)
	}
}

func TestLogFullRollsBack(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e, err := New(env, Options{LogCap: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	a, _ := w.DataHeap.Alloc(64)
	tx := e.Begin()
	tx.StoreUint64(a, 7)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Overflow the tiny log.
	addrs := make([]pmem.Addr, 32)
	for i := range addrs {
		addrs[i], _ = w.DataHeap.Alloc(64)
	}
	tx = e.Begin()
	tx.StoreUint64(a, 8)
	for _, x := range addrs {
		tx.StoreUint64(x, 1)
	}
	if err := tx.Commit(); err != ErrLogFull {
		t.Fatalf("commit err = %v, want ErrLogFull", err)
	}
	if got := env.Core.LoadUint64(a); got != 7 {
		t.Fatalf("a=%d after failed commit, want rollback to 7", got)
	}
}

func TestReattachReusesLogArea(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	env := w.Env(false)
	e1, _ := New(env, Options{})
	area1 := e1.logArea
	e1.Close()
	e2, _ := New(env, Options{})
	defer e2.Close()
	if e2.logArea != area1 {
		t.Fatalf("reattach allocated a new log area: %d vs %d", e2.logArea, area1)
	}
}

func TestRegisteredName(t *testing.T) {
	w := txntest.NewWorld(32 << 20)
	e, err := txn.New("PMDK", w.Env(false))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Name() != "PMDK" {
		t.Fatalf("name = %q", e.Name())
	}
}
