package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func startAdmin(t *testing.T) (*Admin, string) {
	t.Helper()
	reg := NewRegistry()
	reg.Collect(func(emit func(Sample)) {
		emit(Sample{Family: "specpmt_up", Stat: "up", Value: 1})
	})
	rec := NewSpanRecorder(64)
	track := rec.Track("shard-0")
	rec.Record(Span{Kind: SpanBatch, Track: track, Start: 10, End: 500, A: 3, B: 9})
	a := NewAdmin(AdminOptions{Registry: reg, Spans: rec})
	if err := a.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	return a, "http://" + a.Addr().String()
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	c := &http.Client{Timeout: 5 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestAdminEndpoints(t *testing.T) {
	a, base := startAdmin(t)
	a.SetReady(true)

	if code, body := get(t, base+"/healthz"); code != 200 || body != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	if code, body := get(t, base+"/readyz"); code != 200 || body != "ready\n" {
		t.Fatalf("readyz: %d %q", code, body)
	}
	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "specpmt_up 1") {
		t.Fatalf("metrics: %d %q", code, body)
	}
	code, body := get(t, base+"/debug/spans")
	if code != 200 {
		t.Fatalf("spans: %d", code)
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &trace); err != nil {
		t.Fatalf("spans output not JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("spans trace empty")
	}
	if code, body := get(t, base+"/debug/pprof/"); code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index: %d", code)
	}
}

// TestDrainOrdering is the graceful-drain contract: BeginDrain must flip
// /readyz to 503 immediately while /metrics and /debug/spans keep serving;
// only Close stops them.
func TestDrainOrdering(t *testing.T) {
	a, base := startAdmin(t)
	a.SetReady(true)
	if code, _ := get(t, base+"/readyz"); code != 200 {
		t.Fatalf("readyz before drain: %d", code)
	}

	a.BeginDrain()
	if code, body := get(t, base+"/readyz"); code != http.StatusServiceUnavailable || body != "draining\n" {
		t.Fatalf("readyz during drain: %d %q", code, body)
	}
	// The data plane is still winding down: metrics and spans must answer.
	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "specpmt_up 1") {
		t.Fatalf("metrics during drain: %d %q", code, body)
	}
	if code, _ := get(t, base+"/debug/spans"); code != 200 {
		t.Fatalf("spans during drain: %d", code)
	}

	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	c := &http.Client{Timeout: time.Second}
	if _, err := c.Get(base + "/metrics"); err == nil {
		t.Fatal("metrics still serving after Close")
	}
}

func TestAdminCloseIdempotent(t *testing.T) {
	a, _ := startAdmin(t)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAdminSpansDisabled(t *testing.T) {
	reg := NewRegistry()
	a := NewAdmin(AdminOptions{Registry: reg})
	if err := a.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	code, body := get(t, fmt.Sprintf("http://%s/debug/spans", a.Addr()))
	if code != 200 {
		t.Fatalf("spans: %d", code)
	}
	var out map[string]any
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("empty spans not JSON: %v", err)
	}
}
