package obs

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the exposition format byte for byte: family
// ordering, HELP/TYPE lines, label rendering, and histogram bucket/sum/
// count series. Scrapers and the parity test both depend on this shape.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Family("specpmt_ops_total", "data operations by type", KindCounter)
	r.Family("specpmt_conns_active", "currently open client connections", KindGauge)
	r.Family("specpmt_commit_ns", "wall-clock commit latency per shard", KindHistogram)

	var gets, sets Counter
	gets.Add(7)
	sets.Add(3)
	var conns Gauge
	conns.Set(2)
	var h Histogram
	h.Observe(1) // bucket 1: [1,2)
	h.Observe(3) // bucket 2: [2,4)
	h.Observe(3)
	h.Observe(900) // bucket 10: [512,1024)

	r.Collect(func(emit func(Sample)) {
		emit(Sample{Family: "specpmt_ops_total", Label: `op="get"`, Stat: "ops_get", Value: gets.Load()})
		emit(Sample{Family: "specpmt_ops_total", Label: `op="set"`, Stat: "ops_set", Value: sets.Load()})
		emit(Sample{Family: "specpmt_conns_active", Stat: "conns_active", Value: uint64(conns.Load())})
		emit(Sample{Family: "specpmt_commit_ns", Label: ShardLabel(0), Hist: h.Snapshot()})
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP specpmt_ops_total data operations by type
# TYPE specpmt_ops_total counter
specpmt_ops_total{op="get"} 7
specpmt_ops_total{op="set"} 3
# HELP specpmt_conns_active currently open client connections
# TYPE specpmt_conns_active gauge
specpmt_conns_active 2
# HELP specpmt_commit_ns wall-clock commit latency per shard
# TYPE specpmt_commit_ns histogram
specpmt_commit_ns_bucket{shard="0",le="0"} 0
specpmt_commit_ns_bucket{shard="0",le="1"} 1
specpmt_commit_ns_bucket{shard="0",le="3"} 3
specpmt_commit_ns_bucket{shard="0",le="7"} 3
specpmt_commit_ns_bucket{shard="0",le="15"} 3
specpmt_commit_ns_bucket{shard="0",le="31"} 3
specpmt_commit_ns_bucket{shard="0",le="63"} 3
specpmt_commit_ns_bucket{shard="0",le="127"} 3
specpmt_commit_ns_bucket{shard="0",le="255"} 3
specpmt_commit_ns_bucket{shard="0",le="511"} 3
specpmt_commit_ns_bucket{shard="0",le="1023"} 4
specpmt_commit_ns_bucket{shard="0",le="+Inf"} 4
specpmt_commit_ns_sum{shard="0"} 907
specpmt_commit_ns_count{shard="0"} 4
`
	if got := b.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestLazyHookFamilies covers the StatsHook adapter path: samples emitted
// for undeclared families declare them lazily as gauges with help text
// from the hook table.
func TestLazyHookFamilies(t *testing.T) {
	r := NewRegistry()
	r.Collect(func(emit func(Sample)) {
		emit(Sample{Family: "specpmt_repl_lag", Stat: "repl_lag", Value: 9})
		emit(Sample{Family: "specpmt_custom_thing", Stat: "custom_thing", Value: 1})
	})
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP specpmt_repl_lag records between the known log head and the replica's applied LSN",
		"# TYPE specpmt_repl_lag gauge",
		"specpmt_repl_lag 9",
		"# HELP specpmt_custom_thing subsystem stat custom_thing (hook-adapted)",
		"specpmt_custom_thing 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

// TestGatherSingleEpoch asserts collectors run once per gather in
// registration order — the property the STATS consistency fix rests on.
func TestGatherSingleEpoch(t *testing.T) {
	r := NewRegistry()
	var calls []int
	r.Collect(func(emit func(Sample)) {
		calls = append(calls, 1)
		emit(Sample{Family: "a", Stat: "a", Value: 1})
	})
	r.Collect(func(emit func(Sample)) {
		calls = append(calls, 2)
		emit(Sample{Family: "b", Stat: "b", Value: 2})
	})
	got := r.Gather()
	if len(got) != 2 || got[0].Stat != "a" || got[1].Stat != "b" {
		t.Fatalf("gather order wrong: %+v", got)
	}
	if len(calls) != 2 || calls[0] != 1 || calls[1] != 2 {
		t.Fatalf("collector call order wrong: %v", calls)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(1000) // bucket [512,2048) midpoint region
	}
	s := h.Snapshot()
	if s.Count != 100 || s.Sum != 100_000 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	q := s.Quantile(0.5)
	if q < 512 || q > 1024 {
		t.Fatalf("p50 = %d, want within [512,1024]", q)
	}
}
