// Package obs is the production observability plane: a metrics registry
// rendered in Prometheus text exposition format, a ring-buffered wall-clock
// span recorder exported as Chrome trace JSON, an admin HTTP listener
// (/metrics, /healthz, /readyz, /debug/spans, /debug/pprof), and log/slog
// constructors — the live counterpart of internal/trace's offline
// virtual-clock tooling. The server, replication layer, and CLIs all report
// through one Registry so the text STATS block, the /metrics endpoint, and
// the load generator's scrape mode agree on a single source of truth.
package obs

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"specpmt/internal/trace"
)

// Kind is a metric family's Prometheus type.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Family declares one metric family: a Prometheus name, its HELP line, and
// its type. Samples attach to families by name.
type Family struct {
	Name string
	Help string
	Kind Kind
}

// Sample is one collected value. Scalar families (counter, gauge) use
// Value; histogram families carry a Hist snapshot instead. Stat, when
// non-empty, is the field name the sample additionally publishes under in
// the server's text STATS block — the parity contract between STATS and
// /metrics.
type Sample struct {
	Family string
	// Label is a rendered Prometheus label set without braces, e.g.
	// `shard="3"` or `op="get"`; empty for unlabelled samples.
	Label string
	Stat  string
	Value uint64
	Hist  *HistSnapshot
}

// HistSnapshot is a point-in-time copy of a Histogram.
type HistSnapshot struct {
	Counts [trace.HistBuckets]uint64
	Count  uint64
	Sum    uint64
}

// Registry holds metric families and the collectors that produce their
// samples. Gather runs every collector in one pass under the registry lock,
// so a single scrape (or STATS block) cannot interleave with another
// gather's view — one publish epoch per snapshot.
type Registry struct {
	mu         sync.Mutex
	families   []Family
	byName     map[string]int
	collectors []func(emit func(Sample))
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]int{}}
}

// Family declares a metric family. Idempotent: re-declaring an existing
// name keeps the first declaration.
func (r *Registry) Family(name, help string, kind Kind) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.declareLocked(name, help, kind)
}

func (r *Registry) declareLocked(name, help string, kind Kind) {
	if _, ok := r.byName[name]; ok {
		return
	}
	r.byName[name] = len(r.families)
	r.families = append(r.families, Family{Name: name, Help: help, Kind: kind})
}

// Collect registers a collector: a function invoked on every Gather that
// emits the samples it owns. Collectors run in registration order under the
// registry lock; emitting a sample for an undeclared family lazily declares
// it as a gauge (hook-adapted metrics use this path).
func (r *Registry) Collect(fn func(emit func(Sample))) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collectors = append(r.collectors, fn)
}

// Gather runs every collector once and returns the samples in collector
// order — the single-epoch snapshot both WritePrometheus and the server's
// STATS block render from.
func (r *Registry) Gather() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Sample
	emit := func(s Sample) {
		if _, ok := r.byName[s.Family]; !ok {
			kind := KindGauge
			if s.Hist != nil {
				kind = KindHistogram
			}
			r.declareLocked(s.Family, helpFor(s.Stat), kind)
		}
		out = append(out, s)
	}
	for _, fn := range r.collectors {
		fn(emit)
	}
	return out
}

// WritePrometheus renders one gather in Prometheus text exposition format:
// families in declaration order, each with its HELP and TYPE lines,
// histograms as cumulative le buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	samples := r.Gather()
	r.mu.Lock()
	families := append([]Family(nil), r.families...)
	r.mu.Unlock()

	byFamily := make(map[string][]Sample, len(families))
	for _, s := range samples {
		byFamily[s.Family] = append(byFamily[s.Family], s)
	}
	var buf []byte
	// Families render in declaration order; samples within a family keep
	// collector order.
	for _, f := range families {
		ss := byFamily[f.Name]
		if len(ss) == 0 {
			continue
		}
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, f.Name...)
		buf = append(buf, ' ')
		buf = append(buf, f.Help...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, f.Name...)
		buf = append(buf, ' ')
		buf = append(buf, f.Kind.String()...)
		buf = append(buf, '\n')
		for _, s := range ss {
			if s.Hist != nil {
				buf = appendHistogram(buf, f.Name, s.Label, s.Hist)
				continue
			}
			buf = appendSeries(buf, f.Name, "", s.Label, "")
			buf = append(buf, ' ')
			buf = strconv.AppendUint(buf, s.Value, 10)
			buf = append(buf, '\n')
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendSeries renders name[suffix]{label,extra} without a value.
func appendSeries(buf []byte, name, suffix, label, extra string) []byte {
	buf = append(buf, name...)
	buf = append(buf, suffix...)
	if label != "" || extra != "" {
		buf = append(buf, '{')
		buf = append(buf, label...)
		if label != "" && extra != "" {
			buf = append(buf, ',')
		}
		buf = append(buf, extra...)
		buf = append(buf, '}')
	}
	return buf
}

// appendHistogram renders one histogram sample: cumulative buckets up to
// the highest populated power-of-two bound, then +Inf, _sum, and _count.
// Bucket i of the underlying trace histogram covers [2^(i-1), 2^i), so the
// cumulative count through bucket i is reported with le = 2^i - 1 (the
// largest integer value the bucket admits).
func appendHistogram(buf []byte, name, label string, h *HistSnapshot) []byte {
	top := 0
	for i, c := range h.Counts {
		if c != 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += h.Counts[i]
		_, hi := trace.BucketBounds(i)
		buf = appendSeries(buf, name, "_bucket", label, `le="`+strconv.FormatInt(hi-1, 10)+`"`)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, cum, 10)
		buf = append(buf, '\n')
	}
	buf = appendSeries(buf, name, "_bucket", label, `le="+Inf"`)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, h.Count, 10)
	buf = append(buf, '\n')
	buf = appendSeries(buf, name, "_sum", label, "")
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, h.Sum, 10)
	buf = append(buf, '\n')
	buf = appendSeries(buf, name, "_count", label, "")
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, h.Count, 10)
	buf = append(buf, '\n')
	return buf
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram is the live-server adaptation of trace.Histogram: the same
// power-of-two buckets, but every field updated with atomic operations so
// hot-path writers and scraping readers never block each other. Min/max
// tracking is dropped — quantiles come from the buckets.
type Histogram struct {
	counts [trace.HistBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
}

// Observe records one value (clamped at 0, matching the trace histogram's
// bucket 0 semantics).
func (h *Histogram) Observe(v int64) {
	h.counts[histBucketOf(v)].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(uint64(v))
	}
}

// histBucketOf mirrors trace's bucketOf: bucket 0 holds v <= 0, bucket i
// holds [2^(i-1), 2^i), the last bucket absorbs the rest.
func histBucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 1
	for v > 1 && b < trace.HistBuckets-1 {
		v >>= 1
		b++
	}
	return b
}

// Snapshot copies the histogram. Concurrent Observes may land between
// field reads; each field is individually coherent.
func (h *Histogram) Snapshot() *HistSnapshot {
	s := &HistSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile of a snapshot from its buckets (the
// geometric bucket midpoint, like trace.Histogram.Quantile without the
// exact min/max clamp).
func (s *HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank >= s.Count {
		rank = s.Count - 1
	}
	var seen uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			lo, hi := trace.BucketBounds(i)
			return lo + (hi-lo)/2
		}
	}
	return 0
}

// helpFor supplies HELP text for lazily declared (hook-adapted) families;
// the replication layer's stats publish through this path.
func helpFor(stat string) string {
	if h, ok := hookHelp[stat]; ok {
		return h
	}
	return "subsystem stat " + stat + " (hook-adapted)"
}

var hookHelp = map[string]string{
	"repl_role_primary":    "1 when this server ships a replication log as primary",
	"repl_role_replica":    "1 when this server tails a primary as replica",
	"repl_head_lsn":        "newest LSN assigned to (primary) or observed from (replica) the commit log",
	"repl_tail_lsn":        "oldest LSN retained in the primary's bounded replication log",
	"repl_applied_lsn":     "last LSN the replica durably replayed",
	"repl_lag":             "records between the known log head and the replica's applied LSN",
	"repl_replicas":        "connected replica feeds",
	"repl_streaming":       "replica feeds past handshake and streaming records",
	"repl_min_acked_lsn":   "lowest LSN acknowledged across streaming replicas",
	"repl_snapshots":       "snapshot bootstraps served (primary) or applied (replica)",
	"repl_resnapshots":     "re-bootstraps of replicas that had a prior stream position",
	"repl_evictions":       "replica feeds dropped because their position left the bounded log",
	"repl_sync_timeouts":   "SyncAck commits released by timeout instead of replica ack",
	"repl_reconnects":      "replica reconnect attempts",
	"repl_runs_applied":    "replay transactions the replica committed",
	"repl_records_applied": "replication records the replica replayed",
	"repl_ops_applied":     "individual write operations the replica replayed",
}

// FormatStat renders one STATS line ("STAT <name> <value>\n") onto dst —
// shared by the server's STATS block so its output and /metrics derive
// from identical samples.
func FormatStat(dst []byte, name string, val uint64) []byte {
	dst = append(dst, "STAT "...)
	dst = append(dst, name...)
	dst = append(dst, ' ')
	dst = strconv.AppendUint(dst, val, 10)
	return append(dst, '\n')
}

// ShardLabel returns the rendered label set for shard i.
func ShardLabel(i int) string { return `shard="` + strconv.Itoa(i) + `"` }

// ShardStat returns the STATS field name for a per-shard value, matching
// the server's historical shard<N>_<name> convention.
func ShardStat(i int, name string) string {
	return fmt.Sprintf("shard%d_%s", i, name)
}
