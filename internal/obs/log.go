package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// NewLogger builds the process logger: format is "text" or "json" (the
// -log-format flag). Text keys every record with time/level/msg/attrs the
// way slog's TextHandler renders; json is one JSON object per line.
func NewLogger(format string, w io.Writer, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("obs: unknown log format %q (want text or json)", format)
}

// Nop returns a logger that discards everything — the default when no log
// sink is configured.
func Nop() *slog.Logger { return slog.New(nopHandler{}) }

type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

// LogfLogger adapts a printf-style callback (the pre-slog Logf hooks, and
// testing.T.Logf in tests) into a structured logger: each record renders as
// "msg key=value ..." through one callback invocation.
func LogfLogger(logf func(format string, args ...any)) *slog.Logger {
	return slog.New(&logfHandler{logf: logf})
}

type logfHandler struct {
	logf  func(format string, args ...any)
	mu    sync.Mutex
	attrs []slog.Attr
	group string
}

func (h *logfHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= slog.LevelInfo
}

func (h *logfHandler) Handle(_ context.Context, r slog.Record) error {
	var b strings.Builder
	if r.Level != slog.LevelInfo {
		b.WriteString(r.Level.String())
		b.WriteByte(' ')
	}
	b.WriteString(r.Message)
	emit := func(a slog.Attr) {
		b.WriteByte(' ')
		if h.group != "" {
			b.WriteString(h.group)
			b.WriteByte('.')
		}
		b.WriteString(a.Key)
		b.WriteByte('=')
		fmt.Fprintf(&b, "%v", resolveValue(a.Value))
	}
	for _, a := range h.attrs {
		emit(a)
	}
	r.Attrs(func(a slog.Attr) bool {
		emit(a)
		return true
	})
	h.mu.Lock()
	h.logf("%s", b.String())
	h.mu.Unlock()
	return nil
}

func resolveValue(v slog.Value) any {
	v = v.Resolve()
	if v.Kind() == slog.KindDuration {
		return v.Duration().Round(time.Microsecond)
	}
	return v.Any()
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &logfHandler{logf: h.logf, group: h.group}
	nh.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return nh
}

func (h *logfHandler) WithGroup(name string) slog.Handler {
	nh := &logfHandler{logf: h.logf, attrs: h.attrs}
	if h.group != "" {
		nh.group = h.group + "." + name
	} else {
		nh.group = name
	}
	return nh
}
