package obs

import (
	"io"
	"sync"
	"time"

	"specpmt/internal/trace"
)

// SpanKind enumerates the live request phases the recorder understands.
type SpanKind uint8

const (
	// SpanRequest covers one client request end to end on the connection
	// goroutine: parse complete -> reply ready. A = verb ordinal, B = ops.
	SpanRequest SpanKind = iota
	// SpanQueue covers dispatch -> worker pickup (queueing + batch wait).
	SpanQueue
	// SpanExec covers the worker executing the request's operations.
	SpanExec
	// SpanBatch covers one whole group commit on a shard worker. A = jobs,
	// B = ops.
	SpanBatch
	// SpanCommit covers tx.Commit — log persist, fence, WPQ drain.
	SpanCommit
	// SpanReplWait covers a synchronous-replication ack stall after commit.
	SpanReplWait
	// SpanApply covers one replica replay transaction. A = records, B = ops.
	SpanApply
	// SpanSnapshot covers a replication snapshot (send or bootstrap).
	// A = keys.
	SpanSnapshot
	// SpanMigrate covers one shard-migration pull session on the
	// destination node (filtered snapshot + tail, until the stream breaks
	// or the cutover cancels it). A = shard, B = last applied LSN.
	SpanMigrate
)

var spanNames = [...]struct{ name, cat string }{
	SpanRequest:  {"request", "server"},
	SpanQueue:    {"queue", "server"},
	SpanExec:     {"exec", "server"},
	SpanBatch:    {"batch", "server"},
	SpanCommit:   {"commit", "pmem"},
	SpanReplWait: {"repl-wait", "repl"},
	SpanApply:    {"repl-apply", "repl"},
	SpanSnapshot: {"repl-snapshot", "repl"},
	SpanMigrate:  {"migrate", "cluster"},
}

// Span is one recorded wall-clock interval, compact enough to copy into
// the ring on the hot path without allocation.
type Span struct {
	Kind       SpanKind
	Track      int32
	Start, End int64 // ns since the recorder's epoch
	A, B       uint64
}

// DefaultSpanCap is the default ring capacity — enough for a few seconds
// of batched traffic, small enough to export in one HTTP response.
const DefaultSpanCap = 1 << 14

// SpanRecorder is a bounded ring of wall-clock spans. Writers overwrite
// the oldest entries once the ring wraps, so an export always shows the
// most recent window of activity. Safe for concurrent use; a nil recorder
// is a valid no-op (Record does nothing, Now still reads the clock).
type SpanRecorder struct {
	epoch time.Time

	mu     sync.Mutex
	ring   []Span
	next   uint64 // total spans ever recorded; next%cap is the write slot
	tracks []string
	byName map[string]int32
}

// NewSpanRecorder returns a recorder retaining up to cap spans
// (DefaultSpanCap if cap <= 0).
func NewSpanRecorder(cap int) *SpanRecorder {
	if cap <= 0 {
		cap = DefaultSpanCap
	}
	return &SpanRecorder{
		epoch:  time.Now(),
		ring:   make([]Span, 0, cap),
		byName: map[string]int32{},
	}
}

// Now returns wall nanoseconds since the recorder's epoch — the timestamp
// base every recorded span must use.
func (r *SpanRecorder) Now() int64 {
	if r == nil {
		return 0
	}
	return time.Since(r.epoch).Nanoseconds()
}

// Track interns a track name (a chrome "thread": shard-0, conns-3,
// repl-apply, ...) and returns its id.
func (r *SpanRecorder) Track(name string) int32 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.byName[name]; ok {
		return id
	}
	id := int32(len(r.tracks))
	r.tracks = append(r.tracks, name)
	r.byName[name] = id
	return id
}

// Record appends spans to the ring under one lock acquisition — callers
// batch a request's phases into a single call.
func (r *SpanRecorder) Record(spans ...Span) {
	if r == nil {
		return
	}
	r.mu.Lock()
	for _, s := range spans {
		if len(r.ring) < cap(r.ring) {
			r.ring = append(r.ring, s)
		} else {
			r.ring[r.next%uint64(cap(r.ring))] = s
		}
		r.next++
	}
	r.mu.Unlock()
}

// Total returns the number of spans ever recorded (including overwritten).
func (r *SpanRecorder) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Snapshot copies the retained spans (unordered) and the track table.
func (r *SpanRecorder) Snapshot() ([]Span, []string) {
	if r == nil {
		return nil, nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.ring...), append([]string(nil), r.tracks...)
}

// WriteChrome exports the retained spans as Chrome trace-event JSON via
// internal/trace's live exporter — the same shape the simulator emits, so
// one Perfetto setup reads both.
func (r *SpanRecorder) WriteChrome(w io.Writer, process string) error {
	spans, tracks := r.Snapshot()
	live := make([]trace.LiveSpan, 0, len(spans))
	for _, s := range spans {
		kind := int(s.Kind)
		if kind >= len(spanNames) {
			continue
		}
		ls := trace.LiveSpan{
			Track:   int(s.Track),
			Name:    spanNames[kind].name,
			Cat:     spanNames[kind].cat,
			StartNs: s.Start,
			DurNs:   s.End - s.Start,
		}
		switch s.Kind {
		case SpanRequest:
			ls.Args = map[string]any{"verb": s.A, "ops": s.B}
		case SpanBatch:
			ls.Args = map[string]any{"jobs": s.A, "ops": s.B}
		case SpanApply:
			ls.Args = map[string]any{"records": s.A, "ops": s.B}
		case SpanSnapshot:
			ls.Args = map[string]any{"keys": s.A}
		case SpanMigrate:
			ls.Args = map[string]any{"shard": s.A, "lsn": s.B}
		}
		live = append(live, ls)
	}
	return trace.WriteChromeLive(w, process, tracks, live)
}
