package obs

import (
	"log/slog"
	"time"
)

// Plane bundles the observability surfaces one process shares: the metrics
// registry every subsystem collects into, the live span ring, the slow-op
// threshold, and the structured logger. A server wired with a Plane
// records wall-clock request spans and emits slow-op breakdowns; without
// one it still keeps a private registry (STATS needs it) but skips the
// wall-clock instrumentation entirely.
type Plane struct {
	Reg   *Registry
	Spans *SpanRecorder
	// SlowOp, when > 0, is the wall-time threshold past which a request's
	// full phase breakdown is logged (the slow-op log).
	SlowOp time.Duration
	Log    *slog.Logger
}

// NewPlane builds a plane with a fresh registry and a default-capacity
// span ring. log may be nil (discard).
func NewPlane(log *slog.Logger, slowOp time.Duration) *Plane {
	if log == nil {
		log = Nop()
	}
	return &Plane{
		Reg:    NewRegistry(),
		Spans:  NewSpanRecorder(0),
		SlowOp: slowOp,
		Log:    log,
	}
}
