package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestSpanRecorderRing(t *testing.T) {
	r := NewSpanRecorder(4)
	tr := r.Track("t")
	if again := r.Track("t"); again != tr {
		t.Fatalf("track interning broken: %d vs %d", tr, again)
	}
	for i := 0; i < 10; i++ {
		r.Record(Span{Kind: SpanRequest, Track: tr, Start: int64(i), End: int64(i) + 1})
	}
	spans, tracks := r.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	if r.Total() != 10 {
		t.Fatalf("total = %d, want 10", r.Total())
	}
	if len(tracks) != 1 || tracks[0] != "t" {
		t.Fatalf("tracks = %v", tracks)
	}
	// The ring keeps the newest 4 (starts 6..9).
	for _, s := range spans {
		if s.Start < 6 {
			t.Fatalf("old span %d survived the wrap", s.Start)
		}
	}
}

func TestSpanRecorderNilSafe(t *testing.T) {
	var r *SpanRecorder
	r.Record(Span{})
	if r.Now() != 0 || r.Track("x") != 0 || r.Total() != 0 {
		t.Fatal("nil recorder not inert")
	}
	if s, tr := r.Snapshot(); s != nil || tr != nil {
		t.Fatal("nil recorder snapshot not empty")
	}
}

func TestSpanChromeExport(t *testing.T) {
	r := NewSpanRecorder(64)
	shard := r.Track("shard-0")
	conn := r.Track("conns-1")
	r.Record(
		Span{Kind: SpanRequest, Track: conn, Start: 100, End: 900, A: 1, B: 1},
		Span{Kind: SpanQueue, Track: conn, Start: 120, End: 300},
		Span{Kind: SpanBatch, Track: shard, Start: 300, End: 800, A: 4, B: 4},
		Span{Kind: SpanCommit, Track: shard, Start: 600, End: 800},
	)
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf, "specpmt-test"); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("not valid chrome JSON: %v", err)
	}
	names := map[string]int{}
	for _, e := range out.TraceEvents {
		names[e.Name]++
	}
	for _, want := range []string{"request", "queue", "batch", "commit", "thread_name", "process_name"} {
		if names[want] == 0 {
			t.Fatalf("missing %q events in %v", want, names)
		}
	}
	if !strings.Contains(buf.String(), `"jobs"`) {
		t.Fatal("batch span lost its args")
	}
}

func TestSpanRecorderConcurrent(t *testing.T) {
	r := NewSpanRecorder(256)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := r.Track("t")
			for i := 0; i < 500; i++ {
				r.Record(Span{Kind: SpanExec, Track: tr, Start: int64(i), End: int64(i + 1)})
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := r.WriteChrome(&buf, "x"); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	if r.Total() != 8*500 {
		t.Fatalf("total = %d, want %d", r.Total(), 8*500)
	}
}

func TestLogfLogger(t *testing.T) {
	var lines []string
	log := LogfLogger(func(format string, args ...any) {
		lines = append(lines, strings.TrimSpace(fmt.Sprintf(format, args...)))
	})
	log.Info("serving", "addr", "1.2.3.4:7077", "shards", 4)
	log.Warn("slow op", "verb", "SET")
	log = log.With("conn", 7)
	log.Info("closed")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "serving addr=1.2.3.4:7077 shards=4" {
		t.Fatalf("line 0 = %q", lines[0])
	}
	if lines[1] != "WARN slow op verb=SET" {
		t.Fatalf("line 1 = %q", lines[1])
	}
	if lines[2] != "closed conn=7" {
		t.Fatalf("line 2 = %q", lines[2])
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger("json", &buf, slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "k", 1)
	var obj map[string]any
	if err := json.Unmarshal(buf.Bytes(), &obj); err != nil {
		t.Fatalf("json log line invalid: %v (%q)", err, buf.String())
	}
	if obj["msg"] != "hello" {
		t.Fatalf("msg = %v", obj["msg"])
	}
	if _, err := NewLogger("yaml", &buf, slog.LevelInfo); err == nil {
		t.Fatal("bad format accepted")
	}
}
