package obs

import (
	"errors"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"
)

// Admin is the observability HTTP listener: /metrics (Prometheus text),
// /healthz (liveness), /readyz (drain-aware readiness), /debug/spans
// (Chrome trace JSON of the live span ring), and the net/http/pprof
// handlers under /debug/pprof/. It runs beside the data listener on its
// own port and — deliberately — outlives it during a drain: BeginDrain
// flips /readyz to 503 immediately, while /metrics and /debug/spans keep
// serving until Close so the final seconds of a drain stay observable.
type Admin struct {
	reg     *Registry
	spans   *SpanRecorder
	process string
	log     *slog.Logger
	srv     *http.Server
	ready   atomic.Bool

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	done   chan struct{}
}

// AdminOptions configures NewAdmin. Registry is required; Spans may be nil
// (then /debug/spans serves an empty trace).
type AdminOptions struct {
	Registry *Registry
	Spans    *SpanRecorder
	// Process names the exported trace process (default "specpmt-server").
	Process string
	// Log, when non-nil, receives listener lifecycle lines.
	Log *slog.Logger
}

// NewAdmin builds the admin endpoint. It starts not-ready; call SetReady
// once the data plane is serving.
func NewAdmin(opts AdminOptions) *Admin {
	if opts.Process == "" {
		opts.Process = "specpmt-server"
	}
	a := &Admin{
		reg:     opts.Registry,
		spans:   opts.Spans,
		process: opts.Process,
		log:     opts.Log,
		done:    make(chan struct{}),
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/readyz", a.handleReadyz)
	mux.HandleFunc("/debug/spans", a.handleSpans)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	a.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return a
}

func (a *Admin) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := a.reg.WritePrometheus(w); err != nil && a.log != nil {
		a.log.Warn("metrics write failed", "err", err)
	}
}

func (a *Admin) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

func (a *Admin) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !a.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte("draining\n"))
		return
	}
	w.Write([]byte("ready\n"))
}

func (a *Admin) handleSpans(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if a.spans == nil {
		w.Write([]byte(`{"traceEvents":[],"displayTimeUnit":"ns"}` + "\n"))
		return
	}
	if err := a.spans.WriteChrome(w, a.process); err != nil && a.log != nil {
		a.log.Warn("spans write failed", "err", err)
	}
}

// Start listens on addr and serves in the background.
func (a *Admin) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		ln.Close()
		return errors.New("obs: admin closed")
	}
	a.ln = ln
	a.mu.Unlock()
	go a.serve(ln)
	return nil
}

func (a *Admin) serve(ln net.Listener) {
	defer close(a.done)
	err := a.srv.Serve(ln)
	if err != nil && !errors.Is(err, http.ErrServerClosed) && a.log != nil {
		a.log.Warn("admin listener exited", "err", err)
	}
}

// Addr returns the bound address (nil before Start).
func (a *Admin) Addr() net.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ln == nil {
		return nil
	}
	return a.ln.Addr()
}

// SetReady marks the data plane as (not) ready for /readyz.
func (a *Admin) SetReady(ready bool) { a.ready.Store(ready) }

// Ready reports the current readiness state.
func (a *Admin) Ready() bool { return a.ready.Load() }

// BeginDrain flips /readyz to 503. The listener itself keeps serving —
// metrics and span dumps must remain reachable while the data listener
// winds down; only Close stops them.
func (a *Admin) BeginDrain() {
	a.ready.Store(false)
	if a.log != nil {
		a.log.Info("admin: draining (readyz now 503)")
	}
}

// Close shuts the listener down. Call it only after the data plane is
// fully drained.
func (a *Admin) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	started := a.ln != nil
	a.mu.Unlock()
	a.ready.Store(false)
	err := a.srv.Close()
	if started {
		<-a.done
	}
	return err
}
