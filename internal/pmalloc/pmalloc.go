// Package pmalloc is the persistent-memory allocator used by workloads and
// log managers, standing in for libvmmalloc in the paper's methodology
// (§7.1.1: "we port the transactional applications to persistent memory with
// libvmmalloc, which overrides dynamic memory allocation to persistent
// memory allocation").
//
// Like libvmmalloc, allocator metadata is volatile: crash-recoverable
// allocation is out of the paper's scope. Structures that must be found
// again after a crash (log block chains, data-region roots) embed persistent
// next pointers of their own and are re-walked by each engine's recovery.
package pmalloc

import (
	"errors"
	"fmt"
	"sync"

	"specpmt/internal/pmem"
	"specpmt/internal/trace"
)

// ErrOutOfMemory is returned when the heap region is exhausted.
var ErrOutOfMemory = errors.New("pmalloc: out of memory")

// minClass is the smallest allocation size; everything is line-aligned so
// that flushes of one object never drag a neighbour's bytes along.
const minClass = pmem.LineSize

// Heap hands out address ranges inside a fixed region of a Device. It never
// touches memory contents; callers write through their own Core.
type Heap struct {
	mu    sync.Mutex
	start pmem.Addr
	end   pmem.Addr
	bump  pmem.Addr
	free  map[int][]pmem.Addr
	live  int64
	peak  int64

	trc   *trace.Tracer // nil = tracing off
	track int
	now   func() int64 // virtual-clock source for heap samples
}

// NewHeap creates a heap over [start, end). Bounds are line-aligned inward.
func NewHeap(start, end pmem.Addr) *Heap {
	start = (start + minClass - 1) / minClass * minClass
	end = end / minClass * minClass
	if end <= start {
		panic(fmt.Sprintf("pmalloc: empty heap region [%d,%d)", start, end))
	}
	return &Heap{start: start, end: end, bump: start, free: make(map[int][]pmem.Addr)}
}

// classOf rounds a request to its allocation class: next power of two up to
// 4 KiB, then 4-KiB multiples.
func classOf(n int) int {
	if n <= minClass {
		return minClass
	}
	if n <= pmem.PageSize {
		c := minClass
		for c < n {
			c <<= 1
		}
		return c
	}
	return (n + pmem.PageSize - 1) / pmem.PageSize * pmem.PageSize
}

// Alloc returns the address of a line-aligned region of at least n bytes.
func (h *Heap) Alloc(n int) (pmem.Addr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("pmalloc: bad size %d", n)
	}
	c := classOf(n)
	h.mu.Lock()
	defer h.mu.Unlock()
	if list := h.free[c]; len(list) > 0 {
		a := list[len(list)-1]
		h.free[c] = list[:len(list)-1]
		h.account(int64(c))
		return a, nil
	}
	if h.bump+pmem.Addr(c) > h.end {
		return 0, ErrOutOfMemory
	}
	a := h.bump
	h.bump += pmem.Addr(c)
	h.account(int64(c))
	return a, nil
}

func (h *Heap) account(delta int64) {
	h.live += delta
	if h.live > h.peak {
		h.peak = h.live
	}
	h.sampleLocked()
}

// SetTracer attaches an event tracer: every Alloc and Free samples the live
// byte count on a heap-named counter track. now supplies the virtual
// timestamp, typically the owning core's clock; the heap itself costs no
// modeled time, so samples only mark when the owning thread allocated.
func (h *Heap) SetTracer(tr *trace.Tracer, name string, now func() int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.trc, h.now = tr, now
	if tr != nil {
		h.track = tr.RegisterTrack(name)
	}
}

func (h *Heap) sampleLocked() {
	if h.trc != nil && h.now != nil {
		h.trc.HeapSample(h.track, h.now(), h.live)
	}
}

// Free returns a region allocated with size n to the heap.
func (h *Heap) Free(addr pmem.Addr, n int) {
	c := classOf(n)
	h.mu.Lock()
	defer h.mu.Unlock()
	if addr < h.start || addr+pmem.Addr(c) > h.end {
		panic(fmt.Sprintf("pmalloc: Free outside heap: addr=%d size=%d", addr, n))
	}
	h.free[c] = append(h.free[c], addr)
	h.live -= int64(c)
	h.sampleLocked()
}

// Live returns the currently allocated byte count (by class size).
func (h *Heap) Live() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.live
}

// Peak returns the high-water mark of Live.
func (h *Heap) Peak() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.peak
}

// Remaining returns the bytes still available from the bump region (free
// lists excluded); a lower bound on what can still be allocated.
func (h *Heap) Remaining() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int64(h.end - h.bump)
}

// Bounds returns the heap's region.
func (h *Heap) Bounds() (start, end pmem.Addr) { return h.start, h.end }

// Reset forgets all allocations. Used between experiment runs; never during
// a run.
func (h *Heap) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.bump = h.start
	h.free = make(map[int][]pmem.Addr)
	h.live = 0
	h.peak = 0
}
