// Package pmalloc is the persistent-memory allocator used by workloads and
// log managers. It has two modes:
//
//   - NewHeap builds the original libvmmalloc-style volatile allocator (the
//     paper's §7.1.1 methodology): metadata lives in Go memory, nothing is
//     written to the device, and crash-recoverable allocation is out of
//     scope. The experiment harness uses this mode so modeled timings stay
//     bit-identical with the published figures.
//
//   - OpenLogged builds the span-based logged allocator (go-pmem style):
//     per-size-class spans with persistent block bitmaps, a redo log of
//     alloc/free records stamped with monotonically increasing sequence
//     numbers, a checkpointed span table, and a header whose magic value
//     distinguishes a first run from a restart. Metadata survives power
//     failures: Reattach replays the log over the last checkpoint and the
//     recovered state must match the pre-crash allocation map exactly.
//     Pools (specpmt.Pool, specpmt.ThreadedPool) run in this mode.
//
// Both modes share the size-class scheme: power-of-two classes up to one
// page, then page multiples, everything line-aligned so that flushes of one
// object never drag a neighbour's bytes along.
package pmalloc

import (
	"errors"
	"fmt"
	"sync"

	"specpmt/internal/pmem"
	"specpmt/internal/trace"
)

// ErrOutOfMemory is returned when the heap region is exhausted.
var ErrOutOfMemory = errors.New("pmalloc: out of memory")

// minClass is the smallest allocation size; everything is line-aligned so
// that flushes of one object never drag a neighbour's bytes along.
const minClass = pmem.LineSize

// Heap hands out address ranges inside a fixed region of a Device. In
// volatile mode it never touches memory contents; in logged mode it owns a
// metadata prefix of its region (header, redo log, span table) and keeps it
// crash consistent. Callers write block contents through their own Core
// either way.
type Heap struct {
	mu    sync.Mutex
	start pmem.Addr
	end   pmem.Addr
	live  int64
	peak  int64

	// volatile (libvmmalloc) mode
	bump pmem.Addr
	free map[int][]pmem.Addr

	// logged span mode (nil in volatile mode)
	lg *logged

	trc   *trace.Tracer // nil = tracing off
	track int
	now   func() int64 // virtual-clock source for heap samples
}

// NewHeap creates a volatile-metadata heap over [start, end). Bounds are
// line-aligned inward.
func NewHeap(start, end pmem.Addr) *Heap {
	start = (start + minClass - 1) / minClass * minClass
	end = end / minClass * minClass
	if end <= start {
		panic(fmt.Sprintf("pmalloc: empty heap region [%d,%d)", start, end))
	}
	return &Heap{start: start, end: end, bump: start, free: make(map[int][]pmem.Addr)}
}

// Logged reports whether the heap runs the crash-consistent span allocator.
func (h *Heap) Logged() bool { return h.lg != nil }

// classOf rounds a request to its allocation class: next power of two up to
// 4 KiB, then 4-KiB multiples.
func classOf(n int) int {
	if n <= minClass {
		return minClass
	}
	if n <= pmem.PageSize {
		c := minClass
		for c < n {
			c <<= 1
		}
		return c
	}
	return (n + pmem.PageSize - 1) / pmem.PageSize * pmem.PageSize
}

// Alloc returns the address of a line-aligned region of at least n bytes.
// In logged mode the allocation is durable (redo record fenced) before the
// address is returned, so a committed pointer can never outlive its block's
// metadata.
func (h *Heap) Alloc(n int) (pmem.Addr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("pmalloc: bad size %d", n)
	}
	c := classOf(n)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lg != nil {
		a, err := h.lg.alloc(c)
		if err != nil {
			return 0, err
		}
		h.account(int64(c))
		return a, nil
	}
	if list := h.free[c]; len(list) > 0 {
		a := list[len(list)-1]
		h.free[c] = list[:len(list)-1]
		h.account(int64(c))
		return a, nil
	}
	if h.bump+pmem.Addr(c) > h.end {
		return 0, ErrOutOfMemory
	}
	a := h.bump
	h.bump += pmem.Addr(c)
	h.account(int64(c))
	return a, nil
}

func (h *Heap) account(delta int64) {
	h.live += delta
	if h.live > h.peak {
		h.peak = h.live
	}
	h.sampleLocked()
}

// SetTracer attaches an event tracer: every Alloc and Free samples the live
// byte count on a heap-named counter track. now supplies the virtual
// timestamp, typically the owning core's clock; the heap itself costs no
// modeled time on application cores, so samples only mark when the owning
// thread allocated.
func (h *Heap) SetTracer(tr *trace.Tracer, name string, now func() int64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.trc, h.now = tr, now
	if tr != nil {
		h.track = tr.RegisterTrack(name)
	}
}

func (h *Heap) sampleLocked() {
	if h.trc != nil && h.now != nil {
		h.trc.HeapSample(h.track, h.now(), h.live)
	}
}

// Free returns a region allocated with size n to the heap. Logged mode
// verifies the block is currently allocated with that class and panics on a
// double free or size mismatch — both are caller bugs that would corrupt
// the persistent metadata if ignored.
func (h *Heap) Free(addr pmem.Addr, n int) {
	c := classOf(n)
	h.mu.Lock()
	defer h.mu.Unlock()
	if addr < h.start || addr+pmem.Addr(c) > h.end {
		panic(fmt.Sprintf("pmalloc: Free outside heap: addr=%d size=%d", addr, n))
	}
	if h.lg != nil {
		if err := h.lg.freeBlock(addr, c); err != nil {
			panic("pmalloc: " + err.Error())
		}
	} else {
		h.free[c] = append(h.free[c], addr)
	}
	h.live -= int64(c)
	h.sampleLocked()
}

// Live returns the currently allocated byte count (by class size).
func (h *Heap) Live() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.live
}

// Peak returns the high-water mark of Live.
func (h *Heap) Peak() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.peak
}

// Remaining returns a lower bound on the bytes still allocatable: the
// virgin bump region in volatile mode, never-opened plus retired spans in
// logged mode.
func (h *Heap) Remaining() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lg != nil {
		return h.lg.remaining()
	}
	return int64(h.end - h.bump)
}

// Footprint returns the bytes of the region ever consumed from the
// wilderness: bump-start in volatile mode, spans-in-use times span size in
// logged mode. The fragmentation regression tests gate on this: under
// mixed-class churn the logged allocator's footprint stays bounded because
// emptied spans are recycled across classes, while the volatile free-list
// can only grow.
func (h *Heap) Footprint() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lg != nil {
		return h.lg.footprint()
	}
	return int64(h.bump - h.start)
}

// Bounds returns the region from which allocations are handed out. For a
// logged heap this is the span area — the metadata prefix (header, redo
// log, span table) is excluded, so whole-region consumers (Kamino's backup
// copy) never clone or clobber allocator metadata.
func (h *Heap) Bounds() (start, end pmem.Addr) {
	if h.lg != nil {
		return h.lg.spansStart, h.end
	}
	return h.start, h.end
}

// Region returns the full device region the heap owns, including the logged
// metadata prefix.
func (h *Heap) Region() (start, end pmem.Addr) { return h.start, h.end }

// Reset forgets all allocations. Used between experiment runs; never during
// a run. A logged heap reformats its metadata under a fresh incarnation so
// stale records can never replay.
func (h *Heap) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lg != nil {
		h.lg.format(h.lg.incarn + 1)
	} else {
		h.bump = h.start
		h.free = make(map[int][]pmem.Addr)
	}
	h.live = 0
	h.peak = 0
}
