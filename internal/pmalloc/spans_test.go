package pmalloc

import (
	"fmt"
	"testing"

	"specpmt/internal/pmem"
	"specpmt/internal/sim"
)

func newLogged(t *testing.T, size int) (*pmem.Device, *Heap) {
	t.Helper()
	dev := pmem.NewDevice(pmem.Config{Size: size})
	h, err := OpenLogged(dev.NewCore(), pmem.PageSize, pmem.Addr(size))
	if err != nil {
		t.Fatal(err)
	}
	return dev, h
}

func TestLoggedAllocFreeRoundTrip(t *testing.T) {
	_, h := newLogged(t, 8<<20)
	if !h.Logged() {
		t.Fatal("heap not in logged mode")
	}
	sizes := []int{1, 64, 100, 512, 4096, 5000, 40 << 10, 200 << 10}
	type blk struct {
		a pmem.Addr
		n int
	}
	var blocks []blk
	for round := 0; round < 3; round++ {
		for _, n := range sizes {
			a, err := h.Alloc(n)
			if err != nil {
				t.Fatalf("alloc %d: %v", n, err)
			}
			if a%minClass != 0 {
				t.Fatalf("alloc %d returned unaligned addr %d", n, a)
			}
			if !h.Allocated(a, n) {
				t.Fatalf("alloc %d at %d not reported Allocated", n, a)
			}
			blocks = append(blocks, blk{a, n})
		}
	}
	// no overlaps
	for i, b := range blocks {
		for j, o := range blocks {
			if i == j {
				continue
			}
			bi, bj := int64(b.a), int64(o.a)
			if bi < bj+int64(classOf(o.n)) && bj < bi+int64(classOf(b.n)) {
				t.Fatalf("blocks overlap: %d+%d and %d+%d", b.a, b.n, o.a, o.n)
			}
		}
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("Verify after allocs: %v", err)
	}
	for _, b := range blocks {
		h.Free(b.a, b.n)
		if h.Allocated(b.a, b.n) {
			t.Fatalf("freed block %d still Allocated", b.a)
		}
	}
	if h.Live() != 0 {
		t.Fatalf("live %d after freeing everything", h.Live())
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("Verify after frees: %v", err)
	}
	st := h.Stats()
	if st.SpansInUse != 0 {
		t.Fatalf("%d spans still in use after freeing everything", st.SpansInUse)
	}
}

func TestLoggedSurvivesCrashes(t *testing.T) {
	dev, h := newLogged(t, 8<<20)
	rng := sim.NewRand(7)
	type blk struct {
		a pmem.Addr
		n int
	}
	live := map[pmem.Addr]blk{}
	sizes := []int{64, 128, 1000, 4096, 48 << 10, 130 << 10}
	for round := 0; round < 25; round++ {
		for i := 0; i < 40; i++ {
			if len(live) > 0 && rng.Intn(2) == 0 {
				for a, b := range live {
					h.Free(b.a, b.n)
					delete(live, a)
					break
				}
			} else {
				n := sizes[rng.Intn(len(sizes))]
				a, err := h.Alloc(n)
				if err != nil {
					t.Fatalf("round %d: alloc %d: %v", round, n, err)
				}
				live[a] = blk{a, n}
			}
		}
		dev.Crash(rng)
		if err := h.Reattach(dev.NewCore()); err != nil {
			t.Fatalf("round %d: Reattach: %v", round, err)
		}
		if err := h.RecoveryError(); err != nil {
			t.Fatalf("round %d: recovered state diverged: %v", round, err)
		}
		if err := h.Verify(); err != nil {
			t.Fatalf("round %d: Verify: %v", round, err)
		}
		for _, b := range live {
			if !h.Allocated(b.a, b.n) {
				t.Fatalf("round %d: block %d+%d lost across crash", round, b.a, b.n)
			}
		}
	}
	if h.Stats().Checkpoints == 0 {
		t.Fatal("torture never exercised a checkpoint")
	}
}

func TestLoggedRestartFromHeader(t *testing.T) {
	dev, h := newLogged(t, 4<<20)
	a1, _ := h.Alloc(64)
	a2, _ := h.Alloc(8192)
	h.Checkpoint()
	a3, _ := h.Alloc(256) // past the checkpoint: must come back via replay

	// reopen the same region cold: header magic selects the restart path
	h2, err := OpenLogged(dev.NewCore(), pmem.PageSize, pmem.Addr(4<<20))
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		a pmem.Addr
		n int
	}{{a1, 64}, {a2, 8192}, {a3, 256}} {
		if !h2.Allocated(c.a, c.n) {
			t.Fatalf("restart lost block %d+%d", c.a, c.n)
		}
	}
	if h2.Live() != h.Live() {
		t.Fatalf("restart live %d != original %d", h2.Live(), h.Live())
	}
	// a fresh region (no magic) must format, not inherit garbage
	dev2 := pmem.NewDevice(pmem.Config{Size: 1 << 20})
	h3, err := OpenLogged(dev2.NewCore(), pmem.PageSize, pmem.Addr(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	if h3.Live() != 0 {
		t.Fatalf("fresh heap has live bytes %d", h3.Live())
	}
}

func TestLoggedFreeValidation(t *testing.T) {
	_, h := newLogged(t, 2<<20)
	a, _ := h.Alloc(128)
	h.Free(a, 128)
	for _, bad := range []func(){
		func() { h.Free(a, 128) },     // double free
		func() { h.Free(a+64, 4096) }, // wrong class / misaligned
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad free did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestCompactEmptiesSparseSpans(t *testing.T) {
	dev, h := newLogged(t, 8<<20)
	core := dev.NewCore()
	const class = 512
	// fill many spans of one class, then free most blocks to leave every
	// span sparse
	var addrs []pmem.Addr
	for i := 0; i < 1000; i++ {
		a, err := h.Alloc(class)
		if err != nil {
			t.Fatal(err)
		}
		core.StoreUint64(a, uint64(i))
		core.Flush(a, 8, pmem.KindData)
		core.Fence()
		addrs = append(addrs, a)
	}
	spansBefore := h.Stats().SpansInUse
	kept := map[pmem.Addr]uint64{}
	for i, a := range addrs {
		if i%16 == 0 {
			kept[a] = uint64(i)
		} else {
			h.Free(a, class)
		}
	}
	moved := h.Compact(func(old, new pmem.Addr, n int) bool {
		var buf [class]byte
		core.Load(old, buf[:])
		core.Store(new, buf[:])
		core.Flush(new, n, pmem.KindData)
		core.Fence()
		v, ok := kept[old]
		if !ok {
			t.Fatalf("compaction moved unknown block %d", old)
		}
		delete(kept, old)
		kept[new] = v
		return true
	})
	if moved == 0 {
		t.Fatal("compaction moved nothing over a maximally sparse heap")
	}
	spansAfter := h.Stats().SpansInUse
	if spansAfter >= spansBefore {
		t.Fatalf("compaction did not shrink span usage: %d -> %d", spansBefore, spansAfter)
	}
	for a, v := range kept {
		if !h.Allocated(a, class) {
			t.Fatalf("surviving block %d not allocated after compaction", a)
		}
		if got := core.LoadUint64(a); got != v {
			t.Fatalf("block %d holds %d after compaction, want %d", a, got, v)
		}
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("Verify after compaction: %v", err)
	}
	// compaction survives a crash too
	dev.Crash(sim.NewRand(3))
	if err := h.Reattach(dev.NewCore()); err != nil {
		t.Fatal(err)
	}
	if err := h.RecoveryError(); err != nil {
		t.Fatalf("post-compaction recovery diverged: %v", err)
	}
}

func TestSpanRecyclingAcrossClasses(t *testing.T) {
	_, h := newLogged(t, 2<<20)
	foot := func() int64 { return h.Footprint() }
	// churn one class, free everything, churn a different class: the
	// footprint must not double because emptied spans are recycled.
	var as []pmem.Addr
	for i := 0; i < 200; i++ {
		a, err := h.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		as = append(as, a)
	}
	f1 := foot()
	for _, a := range as {
		h.Free(a, 256)
	}
	as = as[:0]
	for i := 0; i < 200; i++ {
		a, err := h.Alloc(1024)
		if err != nil {
			t.Fatal(err)
		}
		as = append(as, a)
	}
	if f2 := foot(); f2 > f1*4+int64(4*h.Stats().SpansTotal) && f2 > f1+4*(64<<10) {
		t.Fatalf("spans not recycled across classes: footprint %d -> %d", f1, f2)
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestLoggedHotPathAllocFree(t *testing.T) {
	// steady-state alloc/free of a warm class must not allocate Go memory
	// (the redo log writes reuse scratch buffers)
	_, h := newLogged(t, 4<<20)
	a, _ := h.Alloc(256)
	h.Free(a, 256)
	n := testing.AllocsPerRun(200, func() {
		a, err := h.Alloc(256)
		if err != nil {
			panic(err)
		}
		h.Free(a, 256)
	})
	if n > 1.0 {
		t.Fatalf("logged alloc/free allocates %.1f Go objects per round, want <= 1", n)
	}
}

func TestGeometrySmallRegions(t *testing.T) {
	for _, size := range []int{1 << 20, 4 << 20, 64 << 20} {
		span, nspans, _, err := geometry(pmem.PageSize, pmem.Addr(size))
		if err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
		if nspans < 2 || span < pmem.PageSize {
			t.Fatalf("size %d: degenerate geometry span=%d n=%d", size, span, nspans)
		}
	}
	if _, _, _, err := geometry(0, 8<<10); err == nil {
		t.Fatal("tiny region accepted")
	}
}

func TestVerifyFlagsDivergence(t *testing.T) {
	// sanity-check that Verify actually detects a divergence between the
	// persistent image and the mirror (the corrupt-byte checker tests in
	// internal/recovery build on this)
	dev, h := newLogged(t, 2<<20)
	a, _ := h.Alloc(64)
	h.Checkpoint()
	_ = a
	// flip one byte of the first span's bitmap in the persistent table
	addr := h.lg.tableOff + descBitmap
	var b [1]byte
	dev.ReadPersisted(addr, b[:])
	dev.PokePersisted(addr, []byte{b[0] ^ 0x10})
	err := h.Verify()
	if err == nil {
		t.Fatal("Verify missed a corrupted span bitmap")
	}
	if want := "span 0"; !containsStr(err.Error(), want) {
		t.Fatalf("error %q does not identify the span", err)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestLoggedReset(t *testing.T) {
	dev, h := newLogged(t, 2<<20)
	for i := 0; i < 50; i++ {
		if _, err := h.Alloc(512); err != nil {
			t.Fatal(err)
		}
	}
	h.Reset()
	if h.Live() != 0 || h.Stats().SpansInUse != 0 {
		t.Fatalf("Reset left live=%d spans=%d", h.Live(), h.Stats().SpansInUse)
	}
	if err := h.Verify(); err != nil {
		t.Fatalf("Verify after Reset: %v", err)
	}
	// old-incarnation log records must not replay after a crash
	dev.Crash(sim.NewRand(1))
	if err := h.Reattach(dev.NewCore()); err != nil {
		t.Fatal(err)
	}
	if err := h.RecoveryError(); err != nil {
		t.Fatal(err)
	}
	if h.Live() != 0 {
		t.Fatalf("stale records resurrected %d live bytes", h.Live())
	}
}

func ExampleHeap_logged() {
	dev := pmem.NewDevice(pmem.Config{Size: 1 << 20})
	h, _ := OpenLogged(dev.NewCore(), pmem.PageSize, 1<<20)
	a, _ := h.Alloc(128)
	fmt.Println(h.Allocated(a, 128), h.Live())
	// Output: true 128
}
