package pmalloc

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"specpmt/internal/pmem"
)

// Logged span allocator (go-pmem style). The heap region is carved into:
//
//	[ header: 1 line ][ redo log: logSlots × 32 B ][ span table: nspans × 192 B ][ span area ]
//
// Small classes (≤ spanSize/2) are served as fixed-size blocks out of a span
// whose persistent descriptor carries the class and a block bitmap. Larger
// classes take a run of contiguous spans. Every metadata mutation appends a
// checksummed, sequence-numbered record to the redo log and fences before
// the operation returns, so the persistent image always knows exactly which
// blocks are allocated. When the log half-fills, a checkpoint writes the
// dirty span descriptors, fences, and only then advances the header's
// logStart (second fence) — a crash anywhere leaves either the old
// (table + full log window) or new (table + shorter window) view, and
// replay over either converges to the same state because records are
// idempotent: open/free-run set absolute span state, alloc/free set or
// clear single bitmap bits.
//
// Recovery (Reattach) rebuilds state from table + log replay and diffs it
// against the pre-crash in-memory mirror — the mirror is ground truth
// (every op was fenced before returning), so any divergence is an allocator
// crash-consistency bug and is reported via RecoveryError / Verify.

const (
	hdrMagic   = 0x5350414e6c6f6731 // "SPANlog1"
	hdrVersion = 1

	recSize     = 32
	descSize    = 192 // one state line + two bitmap lines
	descBitmap  = 64
	bitmapWords = 16 // 1024 blocks = 64 KiB span / 64 B min class

	defaultSpanSize = 64 << 10
	defaultLogSlots = 1024

	// span states, both persistent (descriptor word 0) and volatile
	sFree    = 0
	sSmall   = 1
	sRunHead = 2
	sRunBody = 3
)

// redo-log operations
const (
	opOpen    = 1 // span becomes a small-class span, empty bitmap
	opAlloc   = 2 // set one block bit
	opFree    = 3 // clear one block bit (span retires implicitly at zero)
	opRun     = 4 // allocate a contiguous span run
	opFreeRun = 5 // free a contiguous span run
)

// spanInfo is the volatile mirror of one span descriptor. The zero value is
// the canonical free span.
type spanInfo struct {
	state  uint8
	inList bool  // hint: present in classFree[class]; stale entries tolerated
	class  int64 // sSmall: class bytes; sRunHead: class bytes of the run allocation
	aux    int64 // sRunHead: run length in spans
	alloc  int32 // sSmall: allocated blocks; sRunHead: 1
	bitmap [bitmapWords]uint64
}

func (s *spanInfo) reset() { *s = spanInfo{} }

// AllocStats reports logged-allocator internals for metrics and tests.
type AllocStats struct {
	Allocs, Frees         uint64
	SpanOpens, SpanFrees  uint64
	Checkpoints           uint64
	LogRecords            uint64
	Replayed              uint64 // records replayed at last recovery
	Compactions           uint64
	MovedBlocks           uint64
	SpansInUse, SpansFree int
	SpansTotal            int
}

type logged struct {
	core *pmem.Core

	// geometry, derived deterministically from the region bounds
	start      pmem.Addr
	logOff     pmem.Addr
	tableOff   pmem.Addr
	spansStart pmem.Addr
	spanSize   int
	nspans     int
	logSlots   int

	incarn   uint64
	seq      uint64 // last record sequence written (0 = none)
	logStart uint64 // first record not yet reflected in the span table

	spans     []spanInfo
	freeSpans []int32 // LIFO of retired/never-used spans
	classFree map[int64][]int32

	dirty     []bool // spans mutated since the last completed checkpoint
	dirtyList []int32

	stats        AllocStats
	lastRecovery error
	compacting   bool

	scratchRec  [recSize]byte
	scratchDesc [descSize]byte
	scratchHdr  [pmem.LineSize]byte
}

// fnv64 is FNV-1a with a zero-guard, matching txn.Checksum64 (copied here:
// txn imports pmalloc, so pmalloc cannot import txn).
func fnv64(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	if h == 0 {
		h = 1
	}
	return h
}

// geometry derives the layout for a region. Deterministic, so a restart
// recomputes the same layout it then cross-checks against the header.
func geometry(start, end pmem.Addr) (spanSize, nspans, logSlots int, err error) {
	avail := int64(end - start)
	logSlots = defaultLogSlots
	spanSize = defaultSpanSize
	for {
		meta := int64(pmem.LineSize + logSlots*recSize)
		nspans = int((avail - meta) / int64(spanSize+descSize))
		if nspans >= 8 || spanSize == pmem.PageSize {
			break
		}
		spanSize >>= 1
	}
	if nspans < 2 {
		return 0, 0, 0, fmt.Errorf("pmalloc: region too small for logged heap (%d bytes)", avail)
	}
	return spanSize, nspans, logSlots, nil
}

// OpenLogged creates or reopens a crash-consistent logged heap over
// [start, end) of core's device. A valid header (magic + checksum +
// matching geometry) selects the restart path — state is rebuilt from the
// span table plus log replay; anything else formats a fresh heap. The core
// becomes the heap's dedicated metadata core: all allocator persistence
// (and its modeled time) lands there, not on application cores.
func OpenLogged(core *pmem.Core, start, end pmem.Addr) (*Heap, error) {
	start = (start + minClass - 1) / minClass * minClass
	end = end / minClass * minClass
	spanSize, nspans, logSlots, err := geometry(start, end)
	if err != nil {
		return nil, err
	}
	l := &logged{
		core:     core,
		start:    start,
		logOff:   start + pmem.LineSize,
		spanSize: spanSize,
		nspans:   nspans,
		logSlots: logSlots,
	}
	l.tableOff = l.logOff + pmem.Addr(logSlots*recSize)
	l.spansStart = l.tableOff + pmem.Addr(nspans*descSize)
	h := &Heap{start: start, end: end, lg: l}

	var hdr [pmem.LineSize]byte
	core.Load(start, hdr[:])
	if binary.LittleEndian.Uint64(hdr[0:]) == hdrMagic &&
		fnv64(hdr[:56]) == binary.LittleEndian.Uint64(hdr[56:]) &&
		binary.LittleEndian.Uint64(hdr[8:]) == hdrVersion &&
		binary.LittleEndian.Uint64(hdr[16:]) == uint64(spanSize) &&
		binary.LittleEndian.Uint64(hdr[24:]) == uint64(nspans) &&
		binary.LittleEndian.Uint64(hdr[32:]) == uint64(logSlots) {
		rs, err := l.recoverState()
		if err != nil {
			return nil, err
		}
		l.adopt(rs)
		h.live = l.liveBytes()
		h.peak = h.live
		return h, nil
	}
	l.format(1)
	return h, nil
}

// Reattach rebuilds allocator state from the device after a crash, on a
// fresh core. The recovered state is diffed against the pre-crash mirror;
// a divergence means the allocator lost or invented an allocation across
// the power failure and is reported by RecoveryError (and re-derivable via
// Verify). The persistent truth is adopted either way.
func (h *Heap) Reattach(core *pmem.Core) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	l := h.lg
	if l == nil {
		return nil
	}
	l.core = core
	rs, err := l.recoverState()
	if err != nil {
		l.lastRecovery = err
		return err
	}
	l.lastRecovery = l.diff(rs)
	l.adopt(rs)
	h.live = l.liveBytes()
	if h.live > h.peak {
		h.peak = h.live
	}
	return nil
}

// RecoveryError returns the divergence (if any) detected by the last
// Reattach: nil means the recovered allocation map matched the pre-crash
// mirror exactly.
func (h *Heap) RecoveryError() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lg == nil {
		return nil
	}
	return h.lg.lastRecovery
}

// Verify re-runs recovery from the persistent image and checks it against
// the live in-memory state plus structural invariants (bitmap popcounts
// match allocation counts, classes are valid, runs are well formed, no
// span is both free and allocated). It is the allocator's recovery
// checker: cheap enough to run at every crashtest power-fail point.
func (h *Heap) Verify() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lg == nil {
		return nil
	}
	l := h.lg
	rs, err := l.recoverState()
	if err != nil {
		return err
	}
	if err := l.diff(rs); err != nil {
		return err
	}
	return l.structural(rs)
}

// Checkpoint forces the span table to absorb the log window now. Exported
// for tests that want a quiescent table to corrupt.
func (h *Heap) Checkpoint() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lg != nil {
		h.lg.checkpoint()
	}
}

// SpanTable describes the persistent span-descriptor table for inspection
// and corruption-injection tests: base address, descriptor count, the
// descriptor stride, and the offset of the block bitmap inside each
// descriptor. Zeros for a volatile heap.
func (h *Heap) SpanTable() (base pmem.Addr, n, stride, bitmapOff int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lg == nil {
		return 0, 0, 0, 0
	}
	return h.lg.tableOff, h.lg.nspans, descSize, descBitmap
}

// Allocated reports whether the exact block [addr, addr+classOf(n)) is
// currently allocated. On a volatile heap this is a conservative bump-line
// check; on a logged heap it is exact.
func (h *Heap) Allocated(addr pmem.Addr, n int) bool {
	c := classOf(n)
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lg == nil {
		return addr >= h.start && addr+pmem.Addr(c) <= h.bump
	}
	return h.lg.allocated(addr, c)
}

// Stats returns a snapshot of the logged allocator's counters. Zero value
// for volatile heaps.
func (h *Heap) Stats() AllocStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.lg == nil {
		return AllocStats{}
	}
	s := h.lg.stats
	s.SpansTotal = h.lg.nspans
	inUse := 0
	for i := range h.lg.spans {
		if h.lg.spans[i].state != sFree {
			inUse++
		}
	}
	s.SpansInUse = inUse
	s.SpansFree = h.lg.nspans - inUse
	return s
}

// ---- formatting ----

func (l *logged) format(incarn uint64) {
	var zero [pmem.LineSize]byte
	for i := 0; i < l.nspans; i++ {
		a := l.tableOff + pmem.Addr(i*descSize)
		l.core.Store(a, zero[:])
		l.core.Flush(a, pmem.LineSize, pmem.KindLog)
	}
	l.core.Fence()
	l.incarn = incarn
	l.seq = 0
	l.logStart = 1
	l.writeHeader()
	l.spans = make([]spanInfo, l.nspans)
	l.freeSpans = l.freeSpans[:0]
	for i := l.nspans - 1; i >= 0; i-- {
		l.freeSpans = append(l.freeSpans, int32(i))
	}
	l.classFree = make(map[int64][]int32)
	l.dirty = make([]bool, l.nspans)
	l.dirtyList = l.dirtyList[:0]
	l.stats = AllocStats{}
	l.lastRecovery = nil
}

func (l *logged) writeHeader() {
	b := l.scratchHdr[:]
	for i := range b {
		b[i] = 0
	}
	binary.LittleEndian.PutUint64(b[0:], hdrMagic)
	binary.LittleEndian.PutUint64(b[8:], hdrVersion)
	binary.LittleEndian.PutUint64(b[16:], uint64(l.spanSize))
	binary.LittleEndian.PutUint64(b[24:], uint64(l.nspans))
	binary.LittleEndian.PutUint64(b[32:], uint64(l.logSlots))
	binary.LittleEndian.PutUint64(b[40:], l.logStart)
	binary.LittleEndian.PutUint64(b[48:], l.incarn)
	binary.LittleEndian.PutUint64(b[56:], fnv64(b[:56]))
	l.core.Store(l.start, b)
	l.core.PersistBarrier(l.start, pmem.LineSize, pmem.KindLog)
}

// ---- redo log ----

func (l *logged) recSalt(seq uint64) uint64 {
	var s [16]byte
	binary.LittleEndian.PutUint64(s[0:], l.incarn)
	binary.LittleEndian.PutUint64(s[8:], seq)
	return fnv64(s[:])
}

// appendRec writes one record (store + flush, no fence — callers fence once
// per operation after all its records are staged).
func (l *logged) appendRec(op uint32, span int32, arg uint32, class int64) {
	l.seq++
	b := l.scratchRec[:]
	binary.LittleEndian.PutUint64(b[0:], l.seq)
	binary.LittleEndian.PutUint32(b[8:], op)
	binary.LittleEndian.PutUint32(b[12:], uint32(span))
	binary.LittleEndian.PutUint32(b[16:], arg)
	binary.LittleEndian.PutUint32(b[20:], uint32(class))
	binary.LittleEndian.PutUint64(b[24:], fnv64(b[:24])^l.recSalt(l.seq))
	a := l.logOff + pmem.Addr(int((l.seq-1)%uint64(l.logSlots))*recSize)
	l.core.Store(a, b)
	l.core.Flush(a, recSize, pmem.KindLog)
	l.stats.LogRecords++
}

func (l *logged) markDirty(s int32) {
	if !l.dirty[s] {
		l.dirty[s] = true
		l.dirtyList = append(l.dirtyList, s)
	}
}

// ensureLogSpace checkpoints when the window is half full (amortised) or
// lacks room for the next operation's records (hard bound: never overwrite
// an unapplied slot).
func (l *logged) ensureLogSpace(need int) {
	pending := l.seq + 1 - l.logStart
	if pending+uint64(need) > uint64(l.logSlots) || pending >= uint64(l.logSlots)/2 {
		l.checkpoint()
	}
}

// checkpoint persists every dirty span descriptor, fences, then advances
// the header's logStart past the current tail (second fence). Descriptor
// writes are idempotent against replay, so a crash between the two fences
// is safe: replay from the old logStart over the new table converges.
func (l *logged) checkpoint() {
	if l.seq+1 == l.logStart {
		return
	}
	for _, s := range l.dirtyList {
		l.writeDesc(s)
		l.dirty[s] = false
	}
	l.dirtyList = l.dirtyList[:0]
	l.core.Fence()
	l.logStart = l.seq + 1
	l.writeHeader()
	l.stats.Checkpoints++
}

func (l *logged) writeDesc(s int32) {
	in := &l.spans[s]
	b := l.scratchDesc[:]
	for i := range b {
		b[i] = 0
	}
	binary.LittleEndian.PutUint64(b[0:], uint64(in.state))
	binary.LittleEndian.PutUint64(b[8:], uint64(in.class))
	binary.LittleEndian.PutUint64(b[16:], uint64(in.aux))
	binary.LittleEndian.PutUint64(b[24:], uint64(in.alloc))
	for w := 0; w < bitmapWords; w++ {
		binary.LittleEndian.PutUint64(b[descBitmap+8*w:], in.bitmap[w])
	}
	a := l.tableOff + pmem.Addr(int(s)*descSize)
	l.core.Store(a, b)
	l.core.Flush(a, descSize, pmem.KindLog)
}

// ---- allocation ----

func (l *logged) blocksPer(class int64) int32 { return int32(int64(l.spanSize) / class) }

func (l *logged) blockAddr(span int32, block int32, class int64) pmem.Addr {
	return l.spansStart + pmem.Addr(int64(span)*int64(l.spanSize)+int64(block)*class)
}

func (l *logged) alloc(c int) (pmem.Addr, error) {
	if c <= l.spanSize/2 {
		return l.allocSmall(int64(c))
	}
	runLen := (c + l.spanSize - 1) / l.spanSize
	return l.allocRun(runLen, int64(c))
}

// popFree returns a free span index, or -1.
func (l *logged) popFree() int32 {
	for len(l.freeSpans) > 0 {
		s := l.freeSpans[len(l.freeSpans)-1]
		l.freeSpans = l.freeSpans[:len(l.freeSpans)-1]
		if l.spans[s].state == sFree {
			return s
		}
	}
	return -1
}

// pickSmallSpan returns a span of class c with at least one free block,
// opening a fresh span if every existing one is full.
func (l *logged) pickSmallSpan(c int64) (int32, bool, error) {
	list := l.classFree[c]
	for len(list) > 0 {
		s := list[len(list)-1]
		list = list[:len(list)-1]
		in := &l.spans[s]
		if in.state == sSmall && in.class == c && in.alloc < l.blocksPer(c) {
			l.classFree[c] = list
			in.inList = false // popped; the alloc path re-pushes if still partial
			return s, false, nil
		}
		l.spans[s].inList = false
	}
	l.classFree[c] = list
	s := l.popFree()
	if s < 0 {
		return 0, false, ErrOutOfMemory
	}
	return s, true, nil
}

func (l *logged) allocSmall(c int64) (pmem.Addr, error) {
	l.ensureLogSpace(2)
	s, fresh, err := l.pickSmallSpan(c)
	if err != nil {
		return 0, err
	}
	in := &l.spans[s]
	if fresh {
		in.reset()
		in.state = sSmall
		in.class = c
		l.stats.SpanOpens++
		l.appendRec(opOpen, s, 0, c)
	}
	// lowest free block
	var block int32 = -1
	per := l.blocksPer(c)
	for w := 0; w < bitmapWords && block < 0; w++ {
		if inv := ^in.bitmap[w]; inv != 0 {
			b := int32(w*64 + bits.TrailingZeros64(inv))
			if b < per {
				block = b
			}
		}
	}
	if block < 0 {
		return 0, fmt.Errorf("pmalloc: span %d class %d full but listed free", s, c)
	}
	l.appendRec(opAlloc, s, uint32(block), c)
	l.core.Fence()
	in.bitmap[block/64] |= 1 << uint(block%64)
	in.alloc++
	l.markDirty(s)
	if in.alloc < per && !in.inList {
		l.classFree[c] = append(l.classFree[c], s)
		in.inList = true
	}
	l.stats.Allocs++
	return l.blockAddr(s, block, c), nil
}

func (l *logged) allocRun(runLen int, c int64) (pmem.Addr, error) {
	l.ensureLogSpace(1)
	// first-fit scan for runLen contiguous free spans
	start := -1
	run := 0
	for i := 0; i < l.nspans; i++ {
		if l.spans[i].state == sFree {
			if run == 0 {
				start = i
			}
			run++
			if run == runLen {
				break
			}
		} else {
			run = 0
		}
	}
	if run < runLen {
		return 0, ErrOutOfMemory
	}
	l.appendRec(opRun, int32(start), uint32(runLen), c)
	l.core.Fence()
	head := &l.spans[start]
	head.reset()
	head.state = sRunHead
	head.class = c
	head.aux = int64(runLen)
	head.alloc = 1
	l.markDirty(int32(start))
	for i := 1; i < runLen; i++ {
		b := &l.spans[start+i]
		b.reset()
		b.state = sRunBody
		l.markDirty(int32(start + i))
	}
	l.stats.Allocs++
	l.stats.SpanOpens++
	return l.blockAddr(int32(start), 0, c), nil
}

func (l *logged) freeBlock(addr pmem.Addr, c int) error {
	off := int64(addr - l.spansStart)
	if off < 0 || off >= int64(l.nspans)*int64(l.spanSize) {
		return fmt.Errorf("free of addr %d outside span area", addr)
	}
	s := int32(off / int64(l.spanSize))
	in := &l.spans[s]
	if c > l.spanSize/2 {
		runLen := (c + l.spanSize - 1) / l.spanSize
		if in.state != sRunHead || in.class != int64(c) || in.aux != int64(runLen) || off%int64(l.spanSize) != 0 {
			return fmt.Errorf("free of addr %d size %d: not an allocated run head", addr, c)
		}
		l.ensureLogSpace(1)
		l.appendRec(opFreeRun, s, uint32(runLen), int64(c))
		l.core.Fence()
		for i := 0; i < runLen; i++ {
			l.spans[int(s)+i].reset()
			l.markDirty(s + int32(i))
			l.freeSpans = append(l.freeSpans, s+int32(i))
		}
		l.stats.Frees++
		l.stats.SpanFrees++
		return nil
	}
	if in.state != sSmall || in.class != int64(c) {
		return fmt.Errorf("free of addr %d size %d: span %d holds class %d state %d", addr, c, s, in.class, in.state)
	}
	rem := off % int64(l.spanSize)
	if rem%int64(c) != 0 {
		return fmt.Errorf("free of addr %d: misaligned for class %d", addr, c)
	}
	block := int32(rem / int64(c))
	if in.bitmap[block/64]&(1<<uint(block%64)) == 0 {
		return fmt.Errorf("double free of addr %d (span %d block %d class %d)", addr, s, block, c)
	}
	l.ensureLogSpace(1)
	l.appendRec(opFree, s, uint32(block), int64(c))
	l.core.Fence()
	in.bitmap[block/64] &^= 1 << uint(block%64)
	in.alloc--
	l.markDirty(s)
	if in.alloc == 0 {
		// implicit retirement: a small span with zero blocks is canonically
		// free, so no extra log record is needed and any class can reuse it.
		in.reset()
		l.freeSpans = append(l.freeSpans, s)
		l.stats.SpanFrees++
	} else if !in.inList {
		l.classFree[int64(c)] = append(l.classFree[int64(c)], s)
		in.inList = true
	}
	l.stats.Frees++
	return nil
}

func (l *logged) allocated(addr pmem.Addr, c int) bool {
	off := int64(addr - l.spansStart)
	if off < 0 || off >= int64(l.nspans)*int64(l.spanSize) {
		return false
	}
	s := off / int64(l.spanSize)
	in := &l.spans[s]
	if c > l.spanSize/2 {
		return in.state == sRunHead && in.class == int64(c) && off%int64(l.spanSize) == 0
	}
	if in.state != sSmall || in.class != int64(c) {
		return false
	}
	rem := off % int64(l.spanSize)
	if rem%int64(c) != 0 {
		return false
	}
	block := rem / int64(c)
	return in.bitmap[block/64]&(1<<uint(block%64)) != 0
}

func (l *logged) liveBytes() int64 {
	var live int64
	for i := range l.spans {
		in := &l.spans[i]
		switch in.state {
		case sSmall:
			live += int64(in.alloc) * in.class
		case sRunHead:
			live += in.class
		}
	}
	return live
}

func (l *logged) remaining() int64 {
	var free int64
	for i := range l.spans {
		if l.spans[i].state == sFree {
			free += int64(l.spanSize)
		}
	}
	return free
}

func (l *logged) footprint() int64 {
	var used int64
	for i := range l.spans {
		if l.spans[i].state != sFree {
			used += int64(l.spanSize)
		}
	}
	return used
}

// ---- recovery ----

type recState struct {
	spans    []spanInfo
	seq      uint64
	logStart uint64
	incarn   uint64
	replayed uint64
	// suspects are spans whose loaded descriptor was internally inconsistent
	// (popcount vs stored count, bad state). Legitimate only when a crash
	// tore a mid-checkpoint descriptor write — in which case the span has
	// records in the replay window. Untouched suspects are corruption.
	suspects []int32
	touched  map[int32]bool
}

// recoverState rebuilds allocator state purely from the persistent image:
// header → span table → strict-prefix log replay. It never mutates l.
func (l *logged) recoverState() (*recState, error) {
	var hdr [pmem.LineSize]byte
	l.core.Load(l.start, hdr[:])
	if binary.LittleEndian.Uint64(hdr[0:]) != hdrMagic {
		return nil, fmt.Errorf("pmalloc: recovery: bad header magic %#x", binary.LittleEndian.Uint64(hdr[0:]))
	}
	if got, want := binary.LittleEndian.Uint64(hdr[56:]), fnv64(hdr[:56]); got != want {
		return nil, fmt.Errorf("pmalloc: recovery: header checksum %#x != %#x", got, want)
	}
	if binary.LittleEndian.Uint64(hdr[16:]) != uint64(l.spanSize) ||
		binary.LittleEndian.Uint64(hdr[24:]) != uint64(l.nspans) ||
		binary.LittleEndian.Uint64(hdr[32:]) != uint64(l.logSlots) {
		return nil, fmt.Errorf("pmalloc: recovery: header geometry mismatch")
	}
	rs := &recState{
		spans:    make([]spanInfo, l.nspans),
		logStart: binary.LittleEndian.Uint64(hdr[40:]),
		incarn:   binary.LittleEndian.Uint64(hdr[48:]),
		touched:  map[int32]bool{},
	}
	rs.seq = rs.logStart - 1
	var desc [descSize]byte
	for i := 0; i < l.nspans; i++ {
		l.core.Load(l.tableOff+pmem.Addr(i*descSize), desc[:])
		in := &rs.spans[i]
		state := binary.LittleEndian.Uint64(desc[0:])
		if state > sRunBody {
			rs.suspects = append(rs.suspects, int32(i))
			continue
		}
		in.state = uint8(state)
		if in.state == sFree || in.state == sRunBody {
			continue // canonical: no class/bitmap payload
		}
		in.class = int64(binary.LittleEndian.Uint64(desc[8:]))
		in.aux = int64(binary.LittleEndian.Uint64(desc[16:]))
		stored := int32(binary.LittleEndian.Uint64(desc[24:]))
		if in.state == sRunHead {
			in.alloc = 1
			continue
		}
		pop := int32(0)
		for w := 0; w < bitmapWords; w++ {
			in.bitmap[w] = binary.LittleEndian.Uint64(desc[descBitmap+8*w:])
			pop += int32(bits.OnesCount64(in.bitmap[w]))
		}
		in.alloc = pop
		if pop != stored {
			rs.suspects = append(rs.suspects, int32(i))
		}
		if in.alloc == 0 {
			in.reset() // small span at zero is canonically free
		}
	}
	// strict-prefix replay: stop at the first sequence gap or checksum
	// mismatch — that is the durable tail (all records were fenced before
	// their operation returned, so a mid-log mismatch is corruption, which
	// the diff against the pre-crash mirror then surfaces).
	var rec [recSize]byte
	for seq := rs.logStart; ; seq++ {
		if seq-rs.logStart >= uint64(l.logSlots) {
			break
		}
		a := l.logOff + pmem.Addr(int((seq-1)%uint64(l.logSlots))*recSize)
		l.core.Load(a, rec[:])
		if binary.LittleEndian.Uint64(rec[0:]) != seq {
			break
		}
		if binary.LittleEndian.Uint64(rec[24:]) != fnv64(rec[:24])^l.saltFor(rs.incarn, seq) {
			break
		}
		op := binary.LittleEndian.Uint32(rec[8:])
		span := int32(binary.LittleEndian.Uint32(rec[12:]))
		arg := binary.LittleEndian.Uint32(rec[16:])
		class := int64(binary.LittleEndian.Uint32(rec[20:]))
		if span < 0 || int(span) >= l.nspans {
			break
		}
		if err := applyRec(rs, l, op, span, arg, class); err != nil {
			return nil, err
		}
		rs.seq = seq
		rs.replayed++
	}
	return rs, nil
}

func (l *logged) saltFor(incarn, seq uint64) uint64 {
	var s [16]byte
	binary.LittleEndian.PutUint64(s[0:], incarn)
	binary.LittleEndian.PutUint64(s[8:], seq)
	return fnv64(s[:])
}

// applyRec applies one log record to a recovering state. Records are
// idempotent — absolute resets (open, run, free-run) or single-bit edits —
// so replaying a stale prefix over a newer table (the mid-checkpoint crash
// case) converges back to the same final state.
func applyRec(rs *recState, l *logged, op uint32, span int32, arg uint32, class int64) error {
	rs.touched[span] = true
	in := &rs.spans[span]
	switch op {
	case opOpen:
		in.reset()
		in.state = sSmall
		in.class = class
	case opAlloc:
		if in.state != sSmall {
			// stale replay over a table that already saw this span retire:
			// adopt the record's class; later records re-free these bits.
			in.reset()
			in.state = sSmall
			in.class = class
		}
		if in.bitmap[arg/64]&(1<<uint(arg%64)) == 0 {
			in.bitmap[arg/64] |= 1 << uint(arg%64)
			in.alloc++
		}
	case opFree:
		if in.state == sSmall && in.bitmap[arg/64]&(1<<uint(arg%64)) != 0 {
			in.bitmap[arg/64] &^= 1 << uint(arg%64)
			in.alloc--
		}
		if in.state == sSmall && in.alloc == 0 {
			in.reset()
		}
	case opRun:
		runLen := int(arg)
		if int(span)+runLen > l.nspans {
			return fmt.Errorf("pmalloc: recovery: run record overflows span table")
		}
		in.reset()
		in.state = sRunHead
		in.class = class
		in.aux = int64(runLen)
		in.alloc = 1
		for i := 1; i < runLen; i++ {
			b := &rs.spans[int(span)+i]
			b.reset()
			b.state = sRunBody
			rs.touched[span+int32(i)] = true
		}
	case opFreeRun:
		runLen := int(arg)
		if int(span)+runLen > l.nspans {
			return fmt.Errorf("pmalloc: recovery: free-run record overflows span table")
		}
		for i := 0; i < runLen; i++ {
			rs.spans[int(span)+i].reset()
			rs.touched[span+int32(i)] = true
		}
	default:
		return fmt.Errorf("pmalloc: recovery: unknown log op %d", op)
	}
	return nil
}

// diff compares the recovered state against the live mirror. Every
// operation fences before returning, so the two must agree exactly; a
// mismatch is a crash-consistency hole (or deliberate corruption in the
// checker tests).
func (l *logged) diff(rs *recState) error {
	if rs.incarn != l.incarn {
		return fmt.Errorf("pmalloc: recovered incarnation %d, mirror has %d", rs.incarn, l.incarn)
	}
	if rs.seq != l.seq {
		return fmt.Errorf("pmalloc: recovered through seq %d, mirror fenced seq %d (lost %d records)", rs.seq, l.seq, l.seq-rs.seq)
	}
	var bad []string
	for i := range l.spans {
		m, r := &l.spans[i], &rs.spans[i]
		if m.state != r.state || m.class != r.class || m.alloc != r.alloc ||
			(m.state == sRunHead && m.aux != r.aux) || m.bitmap != r.bitmap {
			bad = append(bad, fmt.Sprintf(
				"span %d: mirror{state %d class %d alloc %d} vs recovered{state %d class %d alloc %d}",
				i, m.state, m.class, m.alloc, r.state, r.class, r.alloc))
			if len(bad) == 3 {
				break
			}
		}
	}
	if bad != nil {
		return fmt.Errorf("pmalloc: recovered state diverges from pre-crash mirror: %s", joinStrings(bad, "; "))
	}
	return nil
}

// structural checks invariants that must hold of any recovered state:
// suspect descriptors must have been overwritten by replay, classes must be
// canonical, bitmaps must stay within the class's block count, and runs
// must be shaped head-then-bodies.
func (l *logged) structural(rs *recState) error {
	for _, s := range rs.suspects {
		if !rs.touched[s] {
			return fmt.Errorf("pmalloc: span %d descriptor is internally inconsistent (bitmap popcount vs stored count) with no replay records covering it: corruption", s)
		}
	}
	for i := 0; i < l.nspans; i++ {
		in := &rs.spans[i]
		switch in.state {
		case sFree, sRunBody:
		case sSmall:
			if in.class < minClass || in.class > int64(l.spanSize)/2 || classOf(int(in.class)) != int(in.class) {
				return fmt.Errorf("pmalloc: span %d has invalid class %d", i, in.class)
			}
			per := l.blocksPer(in.class)
			pop := int32(0)
			for w := 0; w < bitmapWords; w++ {
				word := in.bitmap[w]
				pop += int32(bits.OnesCount64(word))
				lo := int32(w) * 64
				switch {
				case lo >= per:
					if word != 0 {
						return fmt.Errorf("pmalloc: span %d class %d has blocks beyond capacity %d", i, in.class, per)
					}
				case lo+64 > per:
					if word>>uint(per-lo) != 0 {
						return fmt.Errorf("pmalloc: span %d class %d has blocks beyond capacity %d", i, in.class, per)
					}
				}
			}
			if pop != in.alloc || pop == 0 {
				return fmt.Errorf("pmalloc: span %d alloc count %d != bitmap popcount %d", i, in.alloc, pop)
			}
		case sRunHead:
			runLen := int(in.aux)
			if runLen < 1 || i+runLen > l.nspans {
				return fmt.Errorf("pmalloc: span %d run length %d out of range", i, runLen)
			}
			if in.class <= int64(l.spanSize)/2 || in.class > int64(runLen)*int64(l.spanSize) {
				return fmt.Errorf("pmalloc: span %d run class %d inconsistent with length %d", i, in.class, runLen)
			}
			for j := 1; j < runLen; j++ {
				if rs.spans[i+j].state != sRunBody {
					return fmt.Errorf("pmalloc: span %d inside run at %d has state %d, want run body", i+j, i, rs.spans[i+j].state)
				}
			}
		}
	}
	// every run body must belong to a run
	for i := 0; i < l.nspans; i++ {
		if rs.spans[i].state == sRunBody {
			if i == 0 || (rs.spans[i-1].state != sRunHead && rs.spans[i-1].state != sRunBody) {
				return fmt.Errorf("pmalloc: span %d is a run body with no run head", i)
			}
		}
	}
	return nil
}

func (l *logged) adopt(rs *recState) {
	l.spans = rs.spans
	l.seq = rs.seq
	l.logStart = rs.logStart
	l.incarn = rs.incarn
	l.stats.Replayed = rs.replayed
	l.freeSpans = l.freeSpans[:0]
	l.classFree = make(map[int64][]int32)
	l.dirty = make([]bool, l.nspans)
	l.dirtyList = l.dirtyList[:0]
	for i := l.nspans - 1; i >= 0; i-- {
		in := &l.spans[i]
		in.inList = false
		switch in.state {
		case sFree:
			l.freeSpans = append(l.freeSpans, int32(i))
		case sSmall:
			if in.alloc < l.blocksPer(in.class) {
				l.classFree[in.class] = append(l.classFree[in.class], int32(i))
				in.inList = true
			}
		}
	}
	// replay-touched spans may be ahead of the persistent table; keep them
	// dirty so the next checkpoint persists them.
	for s := range rs.touched {
		l.markDirty(s)
	}
}

func joinStrings(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}
