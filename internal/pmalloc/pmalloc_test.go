package pmalloc

import (
	"testing"
	"testing/quick"

	"specpmt/internal/pmem"
)

func TestClassOf(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 64}, {64, 64}, {65, 128}, {100, 128}, {4096, 4096},
		{4097, 8192}, {10000, 12288},
	}
	for _, tc := range cases {
		if got := classOf(tc.n); got != tc.want {
			t.Errorf("classOf(%d)=%d want %d", tc.n, got, tc.want)
		}
	}
}

func TestAllocAlignment(t *testing.T) {
	h := NewHeap(100, 1<<20) // deliberately unaligned start
	for i := 0; i < 50; i++ {
		a, err := h.Alloc(i*7 + 1)
		if err != nil {
			t.Fatal(err)
		}
		if uint64(a)%pmem.LineSize != 0 {
			t.Fatalf("allocation %d not line aligned: %d", i, a)
		}
	}
}

func TestFreeReuse(t *testing.T) {
	h := NewHeap(0, 1<<16)
	a, _ := h.Alloc(128)
	h.Free(a, 128)
	b, _ := h.Alloc(128)
	if a != b {
		t.Fatalf("freed block not reused: %d then %d", a, b)
	}
}

func TestOutOfMemory(t *testing.T) {
	h := NewHeap(0, 1024)
	var got []pmem.Addr
	for {
		a, err := h.Alloc(64)
		if err == ErrOutOfMemory {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, a)
	}
	if len(got) != 16 {
		t.Fatalf("1KiB heap should fit 16 lines, got %d", len(got))
	}
	// Freeing one makes one allocation possible again.
	h.Free(got[3], 64)
	if _, err := h.Alloc(64); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

func TestLiveAndPeak(t *testing.T) {
	h := NewHeap(0, 1<<16)
	a, _ := h.Alloc(64)
	b, _ := h.Alloc(64)
	if h.Live() != 128 {
		t.Fatalf("live=%d want 128", h.Live())
	}
	h.Free(a, 64)
	h.Free(b, 64)
	if h.Live() != 0 || h.Peak() != 128 {
		t.Fatalf("live=%d peak=%d", h.Live(), h.Peak())
	}
}

func TestNoOverlapProperty(t *testing.T) {
	f := func(sizes []uint16) bool {
		h := NewHeap(0, 1<<22)
		type region struct {
			a pmem.Addr
			n int
		}
		var regions []region
		for _, s := range sizes {
			n := int(s)%5000 + 1
			a, err := h.Alloc(n)
			if err != nil {
				return true // heap exhausted is fine
			}
			regions = append(regions, region{a, n})
		}
		for i := range regions {
			for j := i + 1; j < len(regions); j++ {
				ai, ni := regions[i].a, pmem.Addr(regions[i].n)
				aj, nj := regions[j].a, pmem.Addr(regions[j].n)
				if ai < aj+nj && aj < ai+ni {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFreeOutsideHeapPanics(t *testing.T) {
	h := NewHeap(4096, 8192)
	defer func() {
		if recover() == nil {
			t.Fatal("Free outside heap should panic")
		}
	}()
	h.Free(0, 64)
}

func TestReset(t *testing.T) {
	h := NewHeap(0, 1<<16)
	a1, _ := h.Alloc(64)
	h.Reset()
	a2, _ := h.Alloc(64)
	if a1 != a2 {
		t.Fatalf("reset heap should restart allocation: %d vs %d", a1, a2)
	}
	if h.Live() != 64 || h.Peak() != 64 {
		t.Fatalf("reset accounting wrong: live=%d peak=%d", h.Live(), h.Peak())
	}
}

func TestBounds(t *testing.T) {
	h := NewHeap(130, 10007)
	s, e := h.Bounds()
	if uint64(s)%64 != 0 || uint64(e)%64 != 0 || s < 130 || e > 10007 {
		t.Fatalf("bounds not aligned inward: [%d,%d)", s, e)
	}
}

func TestClassOfProperty(t *testing.T) {
	f := func(n uint16) bool {
		if n == 0 {
			return true
		}
		c := classOf(int(n))
		// The class always fits the request, is line-aligned, and is
		// monotone in the request size.
		if c < int(n) || c%64 != 0 {
			return false
		}
		if n > 1 && classOf(int(n-1)) > c {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
