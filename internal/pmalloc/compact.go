package pmalloc

import (
	"math/bits"
	"sort"

	"specpmt/internal/pmem"
)

// Compact migrates live blocks out of sparse spans into fuller spans of the
// same class so emptied spans return to the free pool (where any class — or
// a multi-span run — can reuse them). It is the online defragmenter: the
// heap stays fully usable while it runs.
//
// move relocates one block's contents: it must copy [old, old+n) to
// [new, new+n), repoint every reference, and return true — all crash
// consistently (typically inside a committed transaction). Returning false
// aborts compaction; the destination block is freed and nothing is lost. A
// crash between the move committing and the source free landing leaks the
// source block (allocated, unreachable), which is safe: recovery checkers
// require reachable ⊆ allocated, not equality.
//
// The mover is called without the heap lock held and may itself allocate
// and free on this heap, but must not free the block being moved.
//
// Returns the number of blocks migrated.
func (h *Heap) Compact(move func(old, new pmem.Addr, n int) bool) int {
	h.mu.Lock()
	if h.lg == nil || h.compactingLocked() {
		h.mu.Unlock()
		return 0
	}
	h.lg.compacting = true
	h.lg.stats.Compactions++
	moved := 0
	defer func() {
		h.lg.compacting = false
		h.mu.Unlock()
	}()

	for {
		victim, class := h.lg.pickVictim()
		if victim < 0 {
			return moved
		}
		// migrate every live block of the victim span, re-choosing the
		// destination each time: the mover may have churned the heap while
		// the lock was released.
		progress := false
		for {
			block := h.lg.firstLive(victim)
			if block < 0 {
				break // victim emptied and retired by the last free
			}
			old := h.lg.blockAddr(victim, block, class)
			dst := h.lg.pickDest(class, victim)
			if dst < 0 {
				break // no room elsewhere; victim stays as the class's open span
			}
			newAddr, err := h.lg.allocInSpan(dst, class)
			if err != nil {
				break
			}
			h.account(int64(class))
			h.mu.Unlock()
			ok := move(old, newAddr, int(class))
			h.mu.Lock()
			if !ok {
				h.freeQuietLocked(newAddr, class)
				return moved
			}
			h.freeQuietLocked(old, class)
			moved++
			progress = true
			h.lg.stats.MovedBlocks++
		}
		if !progress {
			return moved
		}
	}
}

func (h *Heap) compactingLocked() bool { return h.lg.compacting }

// freeQuietLocked frees a block updating Heap accounting, for use inside
// compaction where h.mu is already held.
func (h *Heap) freeQuietLocked(addr pmem.Addr, class int64) {
	if err := h.lg.freeBlock(addr, int(class)); err != nil {
		panic("pmalloc: compact: " + err.Error())
	}
	h.live -= class
	h.sampleLocked()
}

// pickVictim chooses the sparsest small span of any class whose live blocks
// fit in the spare capacity of that class's other partial spans — i.e. a
// span that compaction can actually empty. Returns (-1, 0) when the heap is
// already compact.
func (l *logged) pickVictim() (int32, int64) {
	type cand struct {
		span  int32
		alloc int32
	}
	perClass := map[int64][]cand{}
	for i := range l.spans {
		in := &l.spans[i]
		if in.state == sSmall && in.alloc > 0 && in.alloc < l.blocksPer(in.class) {
			perClass[in.class] = append(perClass[in.class], cand{int32(i), in.alloc})
		}
	}
	var bestSpan int32 = -1
	var bestClass int64
	bestFill := int64(1 << 30)
	for class, cands := range perClass {
		if len(cands) < 2 {
			continue
		}
		sort.Slice(cands, func(a, b int) bool { return cands[a].alloc < cands[b].alloc })
		victim := cands[0]
		spare := int32(0)
		for _, c := range cands[1:] {
			spare += l.blocksPer(class) - c.alloc
		}
		if spare < victim.alloc {
			continue
		}
		// prefer the emptiest victim relative to its span capacity
		fill := int64(victim.alloc) * int64(l.spanSize) / int64(l.blocksPer(class))
		if fill < bestFill {
			bestFill = fill
			bestSpan = victim.span
			bestClass = class
		}
	}
	return bestSpan, bestClass
}

// firstLive returns the lowest allocated block in a span, or -1. Also
// returns -1 if the span is no longer a small span of any class (the mover
// raced it away).
func (l *logged) firstLive(s int32) int32 {
	in := &l.spans[s]
	if in.state != sSmall {
		return -1
	}
	for w := 0; w < bitmapWords; w++ {
		if in.bitmap[w] != 0 {
			return int32(w*64 + bits.TrailingZeros64(in.bitmap[w]))
		}
	}
	return -1
}

// pickDest returns the fullest partial span of the class other than the
// victim, or -1.
func (l *logged) pickDest(class int64, victim int32) int32 {
	var best int32 = -1
	var bestAlloc int32 = -1
	per := l.blocksPer(class)
	for i := range l.spans {
		in := &l.spans[i]
		if int32(i) == victim || in.state != sSmall || in.class != class {
			continue
		}
		if in.alloc < per && in.alloc > bestAlloc {
			best = int32(i)
			bestAlloc = in.alloc
		}
	}
	return best
}

// allocInSpan allocates one block in a specific span (compaction
// destination), logging it like any allocation.
func (l *logged) allocInSpan(s int32, class int64) (pmem.Addr, error) {
	in := &l.spans[s]
	per := l.blocksPer(class)
	var block int32 = -1
	for w := 0; w < bitmapWords && block < 0; w++ {
		if inv := ^in.bitmap[w]; inv != 0 {
			b := int32(w*64 + bits.TrailingZeros64(inv))
			if b < per {
				block = b
			}
		}
	}
	if block < 0 {
		return 0, ErrOutOfMemory
	}
	l.ensureLogSpace(1)
	l.appendRec(opAlloc, s, uint32(block), class)
	l.core.Fence()
	in.bitmap[block/64] |= 1 << uint(block%64)
	in.alloc++
	l.markDirty(s)
	l.stats.Allocs++
	return l.blockAddr(s, block, class), nil
}
