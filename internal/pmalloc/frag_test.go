package pmalloc

import (
	"testing"

	"specpmt/internal/pmem"
)

// churnPhases drives one heap through phase-shifting mixed-class churn: each
// phase frees most of the previous phase's blocks (keeping every fifth as a
// straggler, the way long-lived objects pin partially-used memory in real
// workloads) and then allocates a fresh live set in a DIFFERENT size class.
// When compact is true the logged allocator's online compaction runs after
// every phase, with a mover that repoints the straggler bookkeeping.
// Returns the final footprint and the peak live bytes.
func churnPhases(t *testing.T, h *Heap, compact bool) (footprint, peakLive int64) {
	t.Helper()
	classes := []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}
	const liveBytes = 1 << 20 // fresh allocation per phase

	type blk struct {
		a pmem.Addr
		n int
	}
	var live []blk
	for cycle := 0; cycle < 2; cycle++ {
		for _, n := range classes {
			keep := live[:0]
			for i, b := range live {
				if i%5 == 0 {
					keep = append(keep, b) // straggler survives the phase
				} else {
					h.Free(b.a, b.n)
				}
			}
			live = keep
			for total := 0; total < liveBytes; total += n {
				a, err := h.Alloc(n)
				if err != nil {
					t.Fatalf("alloc %d in class-%d phase: %v", n, n, err)
				}
				live = append(live, blk{a, n})
			}
			if compact {
				h.Compact(func(old, new pmem.Addr, sz int) bool {
					for i := range live {
						if live[i].a == old {
							live[i].a = new
							return true
						}
					}
					return true
				})
			}
			if l := h.Live(); l > peakLive {
				peakLive = l
			}
		}
	}
	return h.Footprint(), peakLive
}

// TestFragmentationBoundedUnderChurn is the allocator-fragmentation
// regression gate: the same phase-shifting churn runs against both heap
// modes. The legacy volatile allocator keeps one free list per size class,
// so memory freed in one phase can never serve the next phase's class — its
// footprint grows with every class the workload moves through (≈ classes ×
// live set). The span-based logged allocator recycles emptied spans across
// classes and consolidates straggler-pinned spans with online compaction,
// so its footprint stays a small multiple of the peak live set.
func TestFragmentationBoundedUnderChurn(t *testing.T) {
	const region = 256 << 20

	vol := NewHeap(pmem.PageSize, region)
	volFoot, volPeak := churnPhases(t, vol, false)

	dev := pmem.NewDevice(pmem.Config{Size: region})
	lg, err := OpenLogged(dev.NewCore(), pmem.PageSize, pmem.Addr(region))
	if err != nil {
		t.Fatal(err)
	}
	lgFoot, lgPeak := churnPhases(t, lg, true)
	if err := lg.Verify(); err != nil {
		t.Fatalf("logged heap fails Verify after churn: %v", err)
	}

	t.Logf("volatile: footprint=%d (%.1fx peak live %d)", volFoot, float64(volFoot)/float64(volPeak), volPeak)
	t.Logf("logged:   footprint=%d (%.1fx peak live %d)", lgFoot, float64(lgFoot)/float64(lgPeak), lgPeak)

	// The volatile footprint must exhibit the per-class growth (≥ 6 of the
	// 8 phase classes' live sets, leaving slack for class rounding), and
	// the logged footprint must stay bounded by a small multiple of what
	// is actually live.
	if volFoot < 6*(1<<20) {
		t.Errorf("volatile footprint %d unexpectedly small — churn no longer exhibits per-class growth", volFoot)
	}
	if lgFoot > 4*lgPeak {
		t.Errorf("logged footprint %d exceeds 4x peak live %d: span recycling/compaction regressed", lgFoot, lgPeak)
	}
	if lgFoot*2 > volFoot {
		t.Errorf("logged footprint %d is not clearly below volatile %d", lgFoot, volFoot)
	}
}
