package crashtest

import "testing"

// TestMigrationCutover runs one full injection cycle — mid-pull,
// post-freeze, at-cutover, and a committed cutover crashed on both the new
// owner and the purging old owner — on the default engine.
func TestMigrationCutover(t *testing.T) {
	rep, err := MigrationCutover(MigrateConfig{Seed: 1, Rounds: 4, TxPerRound: 60})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if !rep.Ok() {
		t.Fatalf("violations: %v", rep.Violations)
	}
	if rep.Cutovers != 1 || rep.Aborted != 3 {
		t.Fatalf("cutovers=%d aborted=%d, want 1 committed and 3 aborted", rep.Cutovers, rep.Aborted)
	}
	// Five power-fail points: one per aborted round, two for the committed
	// cutover (new owner, then purged old owner).
	if rep.Crashes != 5 || rep.Checks.Points != 5 {
		t.Fatalf("crashes=%d points=%d, want 5", rep.Crashes, rep.Checks.Points)
	}
	if rep.Checks.Failed != 0 {
		t.Fatalf("checker summary reports %d failures", rep.Checks.Failed)
	}
}

// TestMigrationCutoverPMDK exercises the scenario on the undo-log engine,
// whose recovery path (write-free undo rollback) differs most from the
// speculative engines.
func TestMigrationCutoverPMDK(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rep, err := MigrationCutover(MigrateConfig{Engine: "PMDK", Seed: 2, Rounds: 4, TxPerRound: 40})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep)
	if !rep.Ok() {
		t.Fatalf("violations: %v", rep.Violations)
	}
}
