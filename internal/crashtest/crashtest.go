// Package crashtest is the randomized crash-injection harness: it drives an
// engine with a pseudo-random transaction stream, injects power failures at
// random points — between transactions and mid-transaction, with random
// partial eviction of dirty cache lines — runs recovery, and verifies the
// persistent state after EVERY power-fail point with the registered
// recovery-invariant checkers (internal/recovery): committed-data oracles,
// the logged allocator's metadata contract, and engine-level structural
// invariants. Multiple crash/recover/continue rounds per run exercise
// log-area reuse, reclamation across restarts, and recovery idempotence.
//
// A checker violation stops the run at that power-fail point: Report.FailedAt
// carries its zero-based index so the exact failure is reproducible from
// (seed, FailedAt), and the CLI exits non-zero with it.
package crashtest

import (
	"fmt"

	"specpmt"
	"specpmt/internal/pmem"
	"specpmt/internal/recovery"
	"specpmt/internal/sim"
	"specpmt/internal/txn/spec"
	"specpmt/pds/btree"
)

// btreeSlot is the pool root slot the basic scenario's B+tree registers in.
const btreeSlot = 15

// Config parameterises a torture run.
type Config struct {
	// Engine is the crash-consistency scheme under test.
	Engine string
	// Seed makes the whole run reproducible.
	Seed uint64
	// Rounds is the number of crash/recover cycles (default 5).
	Rounds int
	// TxPerRound is the transaction budget per round; the crash lands after
	// a random number of them (default 40).
	TxPerRound int
	// Addrs is the number of distinct 64-byte cells in play (default 32).
	Addrs int
	// PoolSize is the pool size in bytes (default 128 MiB).
	PoolSize int
	// WritesPerTx is the maximum writes per transaction (default 8).
	WritesPerTx int
	// Profile names the media profile the pool runs on (empty = the
	// default, optane-adr). Crash consistency must hold on every profile;
	// eADR and far-memory domains change what a power failure can lose.
	Profile string
}

func (c *Config) setDefaults() {
	if c.Engine == "" {
		c.Engine = "SpecSPMT"
	}
	if c.Rounds == 0 {
		c.Rounds = 5
	}
	if c.TxPerRound == 0 {
		c.TxPerRound = 40
	}
	if c.Addrs == 0 {
		c.Addrs = 32
	}
	if c.PoolSize == 0 {
		c.PoolSize = 128 << 20
	}
	if c.WritesPerTx == 0 {
		c.WritesPerTx = 8
	}
}

// Report summarises a run.
type Report struct {
	Engine    string
	Seed      uint64
	Rounds    int
	Committed int
	Crashes   int
	MidTx     int // crashes that interrupted an open transaction
	// FailedAt is the zero-based power-fail point index at which a
	// recovery checker first failed, -1 when the run was clean. The run
	// stops at the first failing point.
	FailedAt   int
	Violations []string
	// Checks is the recovery-checker summary for the run.
	Checks recovery.Summary
}

// Ok reports whether the run observed no consistency violations.
func (r Report) Ok() bool { return len(r.Violations) == 0 }

// String renders a one-line summary.
func (r Report) String() string {
	status := "OK"
	if !r.Ok() {
		status = fmt.Sprintf("FAILED at power-fail point %d (%d violations)", r.FailedAt, len(r.Violations))
	}
	return fmt.Sprintf("%-12s seed=%-4d rounds=%d committed=%d crashes=%d midTx=%d checks=%d: %s",
		r.Engine, r.Seed, r.Rounds, r.Committed, r.Crashes, r.MidTx, r.Checks.Checks, status)
}

// registerPoolCheckers wires the pool-generic checkers: both logged
// allocators, and — when the pool runs a SpecSPMT-family engine — the
// engine's chain/index/coverage verifier. The engine object is re-created
// on every crash, so the checker resolves it through the pool at check
// time.
func registerPoolCheckers(reg *recovery.Registry, pool *specpmt.Pool) {
	reg.Register(
		recovery.Heap("pmalloc.data", pool.DataHeap()),
		recovery.Heap("pmalloc.log", pool.LogHeap()),
		recovery.Func("spec.log", nil, func() error {
			if e, ok := pool.Engine().(*spec.Engine); ok {
				return e.VerifyRecovered(pool.LogHeap().Allocated)
			}
			return nil
		}),
	)
}

// Run executes one torture run.
func Run(cfg Config) (Report, error) {
	cfg.setDefaults()
	rep := Report{Engine: cfg.Engine, Seed: cfg.Seed, Rounds: cfg.Rounds, FailedAt: -1}
	rng := sim.NewRand(cfg.Seed)
	pool, err := specpmt.Open(specpmt.Config{Engine: cfg.Engine, Size: cfg.PoolSize, Profile: cfg.Profile})
	if err != nil {
		return rep, err
	}
	defer pool.Close()
	addrs := make([]pmem.Addr, cfg.Addrs)
	for i := range addrs {
		addrs[i], err = pool.Alloc(64)
		if err != nil {
			return rep, err
		}
	}
	cells := recovery.Cells("cells", pool.ReadUint64)
	// An ordered index rides along with the cell workload: its multi-node
	// splits exercise crash atomicity across structure changes, and the
	// checker re-opens it from the root slot after every crash exactly as a
	// recovering application would.
	bt, err := btree.New(pool, btreeSlot)
	if err != nil {
		return rep, fmt.Errorf("crashtest: btree: %w", err)
	}
	btc := recovery.BTree("pds.btree", func() (*btree.Tree, error) {
		return btree.Open(pool, btreeSlot)
	})
	reg := recovery.NewRegistry("basic/" + cfg.Engine)
	reg.Register(cells, btc)
	registerPoolCheckers(reg, pool)

	for round := 0; round < cfg.Rounds; round++ {
		// Btree churn first: each Insert/Delete is its own committed
		// transaction (splits included), so the oracle advances in
		// lockstep. It runs before the cell stream so a mid-transaction
		// crash still interrupts the very last transaction of the round.
		for j := 0; j < 4; j++ {
			k := rng.Uint64() % 128
			if rng.Float64() < 0.3 {
				if _, err := bt.Delete(k); err != nil {
					return rep, fmt.Errorf("crashtest: btree delete: %w", err)
				}
				delete(btc.Live(), k)
			} else {
				v := rng.Uint64()
				if err := bt.Insert(k, v); err != nil {
					return rep, fmt.Errorf("crashtest: btree insert: %w", err)
				}
				btc.Live()[k] = v
			}
			rep.Committed++
		}
		nTx := rng.Intn(cfg.TxPerRound) + 1
		midTx := rng.Float64() < 0.5
		for i := 0; i < nTx; i++ {
			tx := pool.Begin()
			writes := map[pmem.Addr]uint64{}
			for j := 0; j < rng.Intn(cfg.WritesPerTx)+1; j++ {
				a := addrs[rng.Intn(len(addrs))]
				v := rng.Uint64()
				tx.StoreUint64(a, v)
				writes[a] = v
			}
			if i == nTx-1 && midTx {
				rep.MidTx++
				break // leave the last transaction open across the crash
			}
			if err := tx.Commit(); err != nil {
				return rep, fmt.Errorf("crashtest: commit: %w", err)
			}
			rep.Committed++
			cells.Commit(writes)
		}
		reg.Snapshot()
		if err := pool.Crash(rng.Uint64()); err != nil {
			return rep, err
		}
		rep.Crashes++
		if err := pool.Recover(); err != nil {
			return rep, fmt.Errorf("crashtest: recovery after crash %d: %w", rep.Crashes, err)
		}
		if err := reg.Check(); err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("round %d: %v", round, err))
			rep.FailedAt = reg.Points() - 1
			rep.Checks = reg.Summary()
			return rep, nil
		}
	}
	rep.Checks = reg.Summary()
	return rep, nil
}

// Engines returns the engines eligible for crash testing (all registered
// schemes except no-log, which is not crash consistent by design).
func Engines() []string {
	var out []string
	for _, e := range specpmt.Engines() {
		if e == "no-log" || e == "SpecSPMT-Hash" {
			// SpecSPMT-Hash is a performance-ablation engine whose recovery
			// has a documented mid-commit window (§4's rejected design).
			continue
		}
		out = append(out, e)
	}
	return out
}
