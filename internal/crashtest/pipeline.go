package crashtest

import (
	"fmt"

	"specpmt"
	"specpmt/internal/pmem"
	"specpmt/internal/recovery"
	"specpmt/internal/sim"
)

// SpecPipelineEngine is the Report.Engine tag of RunSpecPipeline runs.
const SpecPipelineEngine = "SpecSPMT/pipeline"

// RunSpecPipeline tortures the commit pattern the server's pipelined group
// commit is built on: runs of transactions committed speculatively with
// CommitNoFence, retired in windows by a single coalescing Thread.Fence,
// with a power failure injected at a random point — possibly with a window
// of unretired speculative commits outstanding, possibly mid-transaction.
//
// The data oracle is the acknowledgment rule the server enforces (a reply
// is published only after its window's fence retires), expressed as a
// recovery.Prefix checker: after recovery the surviving state must be
//
//   - a PREFIX of the speculative commit history — some cut C where every
//     cell holds exactly its value as of commit C (no torn transactions, no
//     gaps where a later commit survived an earlier one's loss), and
//   - no shorter than the last retired fence — every commit whose fence
//     retired before the crash (i.e. everything the server would have
//     acknowledged) must have survived.
//
// Commits past the fence floor are allowed to vanish: they were
// speculative, and nobody was told they happened. Alongside the prefix
// oracle every power-fail point also runs the allocator and spec-log
// structural checkers, and the run stops at the first violation.
func RunSpecPipeline(cfg Config) (Report, error) {
	cfg.setDefaults()
	rep := Report{Engine: SpecPipelineEngine, Seed: cfg.Seed, Rounds: cfg.Rounds, FailedAt: -1}
	rng := sim.NewRand(cfg.Seed)
	p, err := specpmt.OpenThreaded(specpmt.Config{Engine: "SpecSPMT", Size: cfg.PoolSize, Profile: cfg.Profile}, 1)
	if err != nil {
		return rep, err
	}
	defer p.Close()
	addrs := make([]pmem.Addr, cfg.Addrs)
	for i := range addrs {
		addrs[i], err = p.Alloc(64)
		if err != nil {
			return rep, err
		}
	}

	pre := recovery.Prefix("cells.prefix", addrs, p.ReadUint64)
	reg := recovery.NewRegistry("pipeline/SpecSPMT")
	reg.Register(
		pre,
		recovery.Heap("pmalloc.data", p.DataHeap()),
		recovery.Heap("pmalloc.log", p.LogHeap()),
		recovery.Func("spec.log", nil, func() error {
			return p.SpecPool().VerifyRecovered(p.LogHeap().Allocated)
		}),
	)

	state := map[pmem.Addr]uint64{} // oracle state after the last applied commit

	// Initialize every cell inside one fenced, committed transaction before
	// any speculation. Speculative logging writes data in place before the
	// commit record is durable, and recovery undoes uncommitted leakage by
	// replaying committed values over it — which only covers cells that have
	// a logged history. The paper's allocator initializes memory inside a
	// transaction for exactly this reason; a virgin cell touched only by an
	// unfenced speculative write may surface that write after a crash.
	init := p.Thread(0).Begin()
	for _, a := range addrs {
		init.StoreUint64(a, ^uint64(a))
		state[a] = ^uint64(a)
	}
	if err := init.Commit(); err != nil {
		return rep, fmt.Errorf("crashtest: init commit: %w", err)
	}

	for round := 0; round < cfg.Rounds; round++ {
		th := p.Thread(0)
		// The prefix checker records the state after each speculative commit
		// this round; the crash must recover to exactly one of them, at or
		// past the fence floor.
		pre.Init(state)
		window := rng.Intn(6) + 2 // commits per retire fence
		nTx := rng.Intn(cfg.TxPerRound) + 1
		midTx := rng.Float64() < 0.5
		for i := 1; i <= nTx; i++ {
			tx := th.Begin()
			dtx, ok := tx.(specpmt.DeferredCommitTx)
			if !ok {
				return rep, fmt.Errorf("crashtest: %s does not support CommitNoFence", cfg.Engine)
			}
			writes := map[pmem.Addr]uint64{}
			for j := 0; j < rng.Intn(cfg.WritesPerTx)+1; j++ {
				a := addrs[rng.Intn(len(addrs))]
				v := rng.Uint64()
				dtx.StoreUint64(a, v)
				writes[a] = v
			}
			if i == nTx && midTx {
				rep.MidTx++
				break // leave the last transaction open across the crash
			}
			if err := dtx.CommitNoFence(); err != nil {
				return rep, fmt.Errorf("crashtest: speculative commit: %w", err)
			}
			rep.Committed++
			for a, v := range writes {
				state[a] = v
			}
			pre.Commit(state)
			if i%window == 0 {
				th.Fence() // retire the window: commits 1..i are now acknowledged
				pre.Fence()
			}
		}
		reg.Snapshot()
		if err := p.Crash(rng.Uint64()); err != nil {
			return rep, err
		}
		rep.Crashes++
		if err := p.Recover(); err != nil {
			return rep, fmt.Errorf("crashtest: recovery after crash %d: %w", rep.Crashes, err)
		}
		if err := reg.Check(); err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("round %d: %v", round, err))
			rep.FailedAt = reg.Points() - 1
			rep.Checks = reg.Summary()
			return rep, nil
		}
		// Continue the run from the surviving prefix, like a restarted server.
		state = pre.Cut()
	}
	rep.Checks = reg.Summary()
	return rep, nil
}
