package crashtest

import (
	"fmt"
	"testing"
)

func TestAllEnginesSurviveTorture(t *testing.T) {
	for _, engine := range Engines() {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			for seed := uint64(1); seed <= 4; seed++ {
				rep, err := Run(Config{Engine: engine, Seed: seed, Rounds: 3})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !rep.Ok() {
					t.Fatalf("seed %d: %s\n%v", seed, rep, rep.Violations)
				}
				if rep.Crashes != 3 {
					t.Fatalf("seed %d: crashes=%d", seed, rep.Crashes)
				}
			}
		})
	}
}

func TestTortureIsDeterministic(t *testing.T) {
	a, err := Run(Config{Engine: "SpecSPMT", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Config{Engine: "SpecSPMT", Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different reports:\n%s\n%s", a, b)
	}
}

func TestEnginesExcludesNoLog(t *testing.T) {
	for _, e := range Engines() {
		if e == "no-log" {
			t.Fatal("no-log must be excluded from crash testing")
		}
	}
	if len(Engines()) < 8 {
		t.Fatalf("expected at least 8 crash-testable engines, got %v", Engines())
	}
}

func TestReportString(t *testing.T) {
	rep := Report{Engine: "X", Violations: []string{"boom"}}
	if rep.Ok() {
		t.Fatal("report with violations cannot be Ok")
	}
	if s := rep.String(); s == "" {
		t.Fatal("empty report string")
	}
}

// TestSoftwareEnginesRecoverUnderEADR is the recovery matrix of the software
// engines on the optane-eadr profile: with an eADR persistence domain every
// accepted store is instantly persistent, which changes what a crash can
// lose — the engines must stay crash consistent anyway.
func TestSoftwareEnginesRecoverUnderEADR(t *testing.T) {
	for _, engine := range []string{"PMDK", "Kamino-Tx", "SPHT", "SpecSPMT-DP", "SpecSPMT"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			for seed := uint64(1); seed <= 3; seed++ {
				rep, err := Run(Config{Engine: engine, Seed: seed, Rounds: 3, Profile: "optane-eadr"})
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !rep.Ok() {
					t.Fatalf("seed %d: %s\n%v", seed, rep, rep.Violations)
				}
			}
		})
	}
}

// TestUnknownProfileRejected pins the error path: a bad profile name must
// surface, not silently fall back to the default media.
func TestUnknownProfileRejected(t *testing.T) {
	if _, err := Run(Config{Engine: "SpecSPMT", Profile: "no-such-media"}); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
