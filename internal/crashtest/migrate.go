package crashtest

import (
	"errors"
	"fmt"
	"log/slog"
	"net"
	"time"

	"specpmt/internal/cluster"
	"specpmt/internal/recovery"
	"specpmt/internal/repl"
	"specpmt/internal/server"
	"specpmt/internal/sim"
)

// MigrateConfig parameterises a migration-cutover torture run: a two-node
// cluster under routed client load, one shard migrating back and forth
// between the nodes, and power failures injected at every phase of the
// cutover protocol.
type MigrateConfig struct {
	// Engine is the crash-consistency scheme both nodes run on.
	Engine string
	// Seed makes the whole run reproducible.
	Seed uint64
	// Rounds is the number of migration rounds (default 4 — one full cycle
	// of the injection points: mid-pull, post-freeze, at-cutover, and a
	// committed cutover crashed on both sides).
	Rounds int
	// TxPerRound is the max routed client requests per round (default 80).
	TxPerRound int
	// Keys is the key-space size (default 64 — small, so DELs hit).
	Keys uint64
	// Shards is the shard count of both nodes (default 4).
	Shards int
	// PoolSize is each node's pool size in bytes (default 64 MiB).
	PoolSize int
	// Profile names the media profile (empty = default).
	Profile string
}

func (c *MigrateConfig) setDefaults() {
	if c.Engine == "" {
		c.Engine = "SpecSPMT"
	}
	if c.Rounds == 0 {
		c.Rounds = 4
	}
	if c.TxPerRound == 0 {
		c.TxPerRound = 80
	}
	if c.Keys == 0 {
		c.Keys = 64
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.PoolSize == 0 {
		c.PoolSize = 64 << 20
		if c.Engine == "SpecHPMT" {
			// Same sizing as the replay torture: the hardware engine's
			// per-thread rings need the larger log area.
			c.PoolSize = 256 << 20
		}
	}
}

// MigrateEngines returns the engines the migration-cutover torture runs
// on: migration applies another node's committed records through the
// server's cross-shard Apply path, so the constraint is exactly the
// replica-replay one.
func MigrateEngines() []string { return ReplayEngines() }

// MigrateReport summarises a migration-cutover torture run.
type MigrateReport struct {
	Engine    string
	Seed      uint64
	Rounds    int
	Committed int // routed client transactions committed
	Crashes   int // node power failures injected
	Cutovers  int // migrations that committed ownership
	Aborted   int // migrations aborted by an injected failure
	// FailedAt is the zero-based power-fail point index at which a
	// recovery checker first failed, -1 when the run was clean.
	FailedAt   int
	Violations []string
	// Checks is the recovery-checker summary for the run.
	Checks recovery.Summary
}

// Ok reports whether the run observed no divergence.
func (r MigrateReport) Ok() bool { return len(r.Violations) == 0 }

// String renders a one-line summary.
func (r MigrateReport) String() string {
	status := "OK"
	if !r.Ok() {
		status = fmt.Sprintf("FAILED at power-fail point %d (%d violations)", r.FailedAt, len(r.Violations))
	}
	return fmt.Sprintf("migrate %-12s seed=%-4d rounds=%d committed=%d crashes=%d cutovers=%d aborted=%d: %s",
		r.Engine, r.Seed, r.Rounds, r.Committed, r.Crashes, r.Cutovers, r.Aborted, status)
}

// migNode is one in-process cluster node: server + replication primary
// (every node can be a migration source) + the cluster wrapper.
type migNode struct {
	srv  *server.Server
	prim *repl.Primary
	node *cluster.Node
	addr cluster.Addr
}

func startMigNode(cfg MigrateConfig, log *slog.Logger) (*migNode, error) {
	s, err := server.New(server.Config{
		Engine: cfg.Engine, Profile: cfg.Profile, Shards: cfg.Shards, PoolSize: cfg.PoolSize,
	})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		s.Close()
		return nil, err
	}
	go s.Serve(ln)
	prim := repl.NewPrimary(s, repl.PrimaryOptions{})
	if err := prim.Start("127.0.0.1:0"); err != nil {
		s.Close()
		return nil, err
	}
	n := &migNode{srv: s, prim: prim, addr: cluster.Addr{
		Data: ln.Addr().String(), Repl: prim.Addr().String(),
	}}
	n.node = cluster.NewNode(s, prim, n.addr, cluster.NodeOptions{Log: log})
	return n, nil
}

func (n *migNode) close() {
	n.node.Close()
	n.prim.Close()
	n.srv.Close()
}

// shardKeys counts the committed pairs the node holds for shard, under a
// full freeze.
func (n *migNode) shardKeys(shard int) (int, error) {
	cnt := 0
	err := n.srv.Freeze(func() {
		n.srv.RangeAll(func(sh int, _, _ uint64) bool {
			if sh == shard {
				cnt++
			}
			return true
		})
	})
	return cnt, err
}

// The shard that migrates back and forth between the two nodes.
const migTortureShard = 1

// errInjected is the sentinel a MigrateHooks callback returns to abort the
// cutover at the round's injection point.
var errInjected = errors.New("crashtest: injected power failure")

// MigrationCutover tortures the live shard-migration protocol: two cluster
// nodes under routed client load (tracking a committed-state oracle), one
// shard migrating between them, and a power failure injected every round —
// either at a cutover phase (mid-pull, post-freeze, at-cutover), which
// aborts the migration and crashes the destination over its half-pulled
// shard copy, or right after a committed cutover, which crashes the new
// owner and then the purging old owner. After every power-fail point the
// full recovery checker registry runs: each node must serve exactly the
// oracle projected onto the shards it owns, both nodes' allocator and
// spec-log metadata must verify, and the two nodes must agree on the map.
func MigrationCutover(cfg MigrateConfig) (MigrateReport, error) {
	cfg.setDefaults()
	rep := MigrateReport{Engine: cfg.Engine, Seed: cfg.Seed, Rounds: cfg.Rounds, FailedAt: -1}
	rng := sim.NewRand(cfg.Seed)
	quiet := slog.New(slog.DiscardHandler)

	a, err := startMigNode(cfg, quiet)
	if err != nil {
		return rep, err
	}
	defer a.close()
	b, err := startMigNode(cfg, quiet)
	if err != nil {
		return rep, err
	}
	defer b.close()
	a.node.Bootstrap()
	if err := b.node.Join(a.addr.Data); err != nil {
		return rep, err
	}
	cur := a.node.Map()

	view, err := cluster.NewView([]string{a.addr.Data, b.addr.Data})
	if err != nil {
		return rep, err
	}
	router := cluster.NewRouter(view, "text")
	defer router.Close()

	// The committed-state oracle lives inside a recovery.KV checker whose
	// Check splits the snapshot by current shard ownership: each node must
	// serve exactly the oracle projected onto the shards it owns (a
	// half-pulled, not-yet-owned shard copy is invisible to routing and is
	// deliberately not held to the oracle — structural validity of such a
	// copy is what Crash's SelfCheck enforces).
	kv := recovery.KV("hashmap/ownership", func(expect map[uint64]uint64) error {
		for _, n := range []*migNode{a, b} {
			if err := n.srv.CheckRecoveredShards(expect, cur.NodeShards(n.addr.Data)); err != nil {
				return fmt.Errorf("node %s: %w", n.addr.Data, err)
			}
		}
		return nil
	})
	oracle := kv.Live()

	reg := recovery.NewRegistry("migrate/" + cfg.Engine)
	reg.Register(kv)
	for _, nd := range []struct {
		tag string
		n   *migNode
	}{{"a", a}, {"b", b}} {
		pool := nd.n.srv.Pool()
		reg.Register(
			recovery.Heap(nd.tag+".pmalloc.data", pool.DataHeap()),
			recovery.Heap(nd.tag+".pmalloc.log", pool.LogHeap()),
			recovery.Func(nd.tag+".spec.log", nil, func() error {
				if sp := pool.SpecPool(); sp != nil {
					return sp.VerifyRecovered(pool.LogHeap().Allocated)
				}
				return nil
			}),
		)
	}
	reg.Register(recovery.Func("cluster.map", nil, func() error {
		for _, n := range []*migNode{a, b} {
			m := n.node.Map()
			if m == nil || m.Epoch != cur.Epoch {
				return fmt.Errorf("node %s at epoch %v, coordinator at %d", n.addr.Data, m, cur.Epoch)
			}
			for s, o := range m.Owners {
				if o != cur.Owners[s] {
					return fmt.Errorf("node %s maps shard %d to %s, coordinator to %s",
						n.addr.Data, s, o.Data, cur.Owners[s].Data)
				}
			}
		}
		return nil
	}))

	// crashCheck power-fails one node and verifies the whole cluster
	// afterwards. The caller must have quiesced the node (no routed
	// requests in flight, puller cancelled).
	crashCheck := func(n *migNode, round int) (bool, error) {
		if err := n.srv.Crash(rng.Uint64()); err != nil {
			return false, fmt.Errorf("crashtest: round %d: crashing %s: %w", round, n.addr.Data, err)
		}
		rep.Crashes++
		reg.Snapshot()
		if err := reg.Check(); err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("round %d: %v", round, err))
			rep.FailedAt = reg.Points() - 1
			rep.Checks = reg.Summary()
			return false, nil
		}
		return true, nil
	}

	burst := func(round int) error {
		nTx := rng.Intn(cfg.TxPerRound) + cfg.TxPerRound/2
		for i := 0; i < nTx; i++ {
			if err := randomRoutedTx(router, rng, cfg.Keys, oracle); err != nil {
				return fmt.Errorf("crashtest: round %d tx %d: %w", round, i, err)
			}
			rep.Committed++
		}
		return nil
	}

	points := []string{"mid-pull", "post-freeze", "at-cutover", "commit"}
	for round := 0; round < cfg.Rounds; round++ {
		if err := burst(round); err != nil {
			return rep, err
		}

		// The migration direction follows ownership: the shard always
		// moves from its current owner to the other node.
		src, dst := a, b
		if cur.Owners[migTortureShard].Data == b.addr.Data {
			src, dst = b, a
		}
		point := points[round%len(points)]
		var hooks cluster.MigrateHooks
		switch point {
		case "mid-pull":
			hooks.PullStarted = func() error { return errInjected }
		case "post-freeze":
			hooks.Frozen = func(uint64) error { return errInjected }
		case "at-cutover":
			hooks.Verified = func() error { return errInjected }
		}

		next, err := cluster.MigrateWith(migTortureShard, dst.addr.Data, src.addr.Data, quiet, hooks)
		if point == "commit" {
			if err != nil {
				return rep, fmt.Errorf("crashtest: round %d: cutover failed: %w", round, err)
			}
			cur = next
			rep.Cutovers++
		} else {
			if !errors.Is(err, errInjected) {
				return rep, fmt.Errorf("crashtest: round %d: expected injected abort at %s, got %v",
					round, point, err)
			}
			rep.Aborted++
		}

		// Power failure on the migration destination. MigrateWith has
		// stopped the puller on both the abort and the cutover path, and
		// the burst is drained, so the node is quiescent; on abort rounds
		// the pool still holds the partial shard copy the pull left behind.
		if ok, err := crashCheck(dst, round); !ok {
			return rep, err
		}

		if point == "commit" {
			// The old owner purges the migrated-away shard asynchronously;
			// once the purge drains, power-fail it too — recovery over a
			// freshly mass-deleted shard is its own state.
			if err := waitPurged(src, migTortureShard, 15*time.Second); err != nil {
				return rep, fmt.Errorf("crashtest: round %d: %w", round, err)
			}
			if ok, err := crashCheck(src, round); !ok {
				return rep, err
			}
		}
	}
	rep.Checks = reg.Summary()
	return rep, nil
}

// waitPurged waits until the node holds no committed pairs for shard.
func waitPurged(n *migNode, shard int, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		cnt, err := n.shardKeys(shard)
		if err != nil {
			return err
		}
		if cnt == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("crashtest: %s still holds %d keys of migrated shard %d",
				n.addr.Data, cnt, shard)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// randomRoutedTx issues one random request through the cluster router and
// folds its committed effect into the oracle. Multi-key transactions
// redraw until the keys land on one node; a draw invalidated by a map
// refresh between the check and the send is dropped, not an error — the
// transaction never executed.
func randomRoutedTx(r *cluster.Router, rng *sim.Rand, keys uint64, oracle map[uint64]uint64) error {
	switch rng.Intn(10) {
	case 0, 1: // DEL
		k := rng.Uint64() % keys
		if _, err := r.Do(server.Op{Kind: server.OpDel, Key: k}); err != nil {
			return err
		}
		delete(oracle, k)
	case 2, 3: // same-node MULTI of SETs (and sometimes a DEL)
		n := rng.Intn(4) + 2
		ks := make([]uint64, n)
		for {
			for i := range ks {
				ks[i] = rng.Uint64() % keys
			}
			if r.SameNode(ks) {
				break
			}
		}
		ops := make([]server.Op, n)
		for i, k := range ks {
			if rng.Intn(4) == 0 {
				ops[i] = server.Op{Kind: server.OpDel, Key: k}
			} else {
				ops[i] = server.Op{Kind: server.OpSet, Key: k, Arg1: rng.Uint64()}
			}
		}
		results, _, err := r.Exec(ops)
		if errors.Is(err, cluster.ErrCrossNode) {
			return nil
		}
		if err != nil {
			return err
		}
		for i, op := range ops {
			switch {
			case op.Kind == server.OpSet && results[i].Status == server.StatusOK:
				oracle[op.Key] = op.Arg1
			case op.Kind == server.OpDel && results[i].Status == server.StatusOK:
				delete(oracle, op.Key)
			}
		}
	default: // SET
		k, v := rng.Uint64()%keys, rng.Uint64()
		if _, err := r.Do(server.Op{Kind: server.OpSet, Key: k, Arg1: v}); err != nil {
			return err
		}
		oracle[k] = v
	}
	return nil
}
