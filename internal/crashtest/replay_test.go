package crashtest

import "testing"

// TestReplicaReplay crash-tortures the replication replay path: the replica's
// pool is power-failed mid-replay each round, recovered, and re-tailed from
// its durable cursor; the caught-up state must match the committed oracle.
func TestReplicaReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("replica-replay torture is slow")
	}
	for _, engine := range []string{"SpecSPMT", "PMDK"} {
		for seed := uint64(1); seed <= 2; seed++ {
			t.Run(engine, func(t *testing.T) {
				rep, err := ReplicaReplay(ReplayConfig{Engine: engine, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				t.Log(rep.String())
				if !rep.Ok() {
					for _, v := range rep.Violations {
						t.Error(v)
					}
				}
				if rep.Crashes != rep.Rounds {
					t.Fatalf("injected %d crashes over %d rounds", rep.Crashes, rep.Rounds)
				}
				if rep.Snapshots < 2 {
					t.Fatalf("snapshots = %d, want the initial bootstrap plus at least one eviction-forced re-snapshot", rep.Snapshots)
				}
				if rep.Resumes == 0 {
					t.Fatal("no incarnation resumed from its durable cursor")
				}
			})
		}
	}
}
