package crashtest

import (
	"fmt"

	"specpmt"
	"specpmt/internal/pmem"
	"specpmt/internal/recovery"
	"specpmt/internal/sim"
)

// AllocChurnEngine is the Report.Engine tag of RunAllocChurn runs.
const AllocChurnEngine = "pmalloc/churn"

// churnSizes are the request sizes the churn scenario mixes — several size
// classes plus a large (multi-span) class, so crashes land while spans of
// different classes are being carved, retired, and reused.
var churnSizes = []int{64, 192, 448, 1024, 2048, 4096, 16384}

// RunAllocChurn tortures the logged allocator itself: random mixed-class
// alloc/free churn with online compaction, a power failure every round, and
// the full checker registry after every recovery. Each live block carries a
// stamp committed transactionally at its base, so the scenario checks all
// four contracts at once:
//
//   - the allocator's recovery diff (mirror vs recovered span table/bitmaps)
//     is empty and the recovered metadata verifies structurally,
//   - every Go-side live block is still Allocated() exactly after recovery
//     (allocation is durable before Alloc returns, frees before Free returns),
//   - committed stamps survive in place, and survive relocation — the
//     compaction mover copies a block's stamp inside a committed transaction,
//     so a crash anywhere around a migration must never lose it,
//   - the engine's log/index metadata verifies.
//
// Config is reused: TxPerRound is the churn-op budget per round, Rounds the
// number of power-fail points.
func RunAllocChurn(cfg Config) (Report, error) {
	cfg.setDefaults()
	rep := Report{Engine: AllocChurnEngine, Seed: cfg.Seed, Rounds: cfg.Rounds, FailedAt: -1}
	rng := sim.NewRand(cfg.Seed)
	pool, err := specpmt.Open(specpmt.Config{Engine: cfg.Engine, Size: cfg.PoolSize, Profile: cfg.Profile})
	if err != nil {
		return rep, err
	}
	defer pool.Close()

	type block struct {
		addr  pmem.Addr
		n     int
		stamp uint64
	}
	var live []block

	cells := recovery.Cells("stamps", pool.ReadUint64)
	reg := recovery.NewRegistry("churn/" + cfg.Engine)
	reg.Register(cells)
	registerPoolCheckers(reg, pool)
	reg.Register(recovery.Func("alloc.live", nil, func() error {
		h := pool.DataHeap()
		for _, b := range live {
			if !h.Allocated(b.addr, b.n) {
				return fmt.Errorf("live block addr=%d size=%d not allocated after recovery", b.addr, b.n)
			}
		}
		return nil
	}))

	// stamp commits v at the block's base and records it in the oracle.
	stamp := func(a pmem.Addr, v uint64) error {
		tx := pool.Begin()
		tx.StoreUint64(a, v)
		if err := tx.Commit(); err != nil {
			return fmt.Errorf("crashtest: stamp commit: %w", err)
		}
		rep.Committed++
		cells.Commit(map[pmem.Addr]uint64{a: v})
		return nil
	}

	// mover relocates one block during compaction: copy the stamp in a
	// committed transaction, then repoint the Go-side reference and oracle.
	mover := func(old, new pmem.Addr, n int) bool {
		v := pool.ReadUint64(old)
		tx := pool.Begin()
		tx.StoreUint64(new, v)
		if err := tx.Commit(); err != nil {
			return false
		}
		rep.Committed++
		for i := range live {
			if live[i].addr == old {
				live[i].addr = new
				break
			}
		}
		cells.Forget(old)
		cells.Commit(map[pmem.Addr]uint64{new: v})
		return true
	}

	for round := 0; round < cfg.Rounds; round++ {
		ops := rng.Intn(cfg.TxPerRound) + cfg.TxPerRound/2
		for i := 0; i < ops; i++ {
			switch {
			case rng.Intn(20) == 0:
				pool.DataHeap().Compact(mover)
			case len(live) > 0 && (rng.Intn(2) == 0 || len(live) > 512):
				// free a random live block
				j := rng.Intn(len(live))
				b := live[j]
				pool.Free(b.addr, b.n)
				cells.Forget(b.addr)
				live[j] = live[len(live)-1]
				live = live[:len(live)-1]
			default:
				n := churnSizes[rng.Intn(len(churnSizes))]
				a, err := pool.Alloc(n)
				if err != nil {
					return rep, fmt.Errorf("crashtest: churn alloc %d bytes: %w", n, err)
				}
				v := rng.Uint64()
				if err := stamp(a, v); err != nil {
					return rep, err
				}
				live = append(live, block{addr: a, n: n, stamp: v})
			}
		}
		// one deliberate compaction pass per round so migrations are always
		// in the mix right before the power failure
		pool.DataHeap().Compact(mover)

		reg.Snapshot()
		if err := pool.Crash(rng.Uint64()); err != nil {
			return rep, err
		}
		rep.Crashes++
		if err := pool.Recover(); err != nil {
			return rep, fmt.Errorf("crashtest: recovery after crash %d: %w", rep.Crashes, err)
		}
		if err := reg.Check(); err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("round %d: %v", round, err))
			rep.FailedAt = reg.Points() - 1
			rep.Checks = reg.Summary()
			return rep, nil
		}
	}
	rep.Checks = reg.Summary()
	return rep, nil
}
