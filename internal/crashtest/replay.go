package crashtest

import (
	"fmt"
	"net"
	"time"

	"specpmt/internal/recovery"
	"specpmt/internal/repl"
	"specpmt/internal/server"
	"specpmt/internal/sim"
)

// ReplayConfig parameterises a replica-replay torture run: a primary server
// under random client load, a replica tailing its commit log, and repeated
// replica power failures injected while replay is in flight.
type ReplayConfig struct {
	// Engine is the crash-consistency scheme both servers run on.
	Engine string
	// Seed makes the whole run reproducible.
	Seed uint64
	// Rounds is the number of crash/recover cycles (default 4).
	Rounds int
	// TxPerRound is the max client requests per round (default 120).
	TxPerRound int
	// Keys is the key-space size (default 64 — small, so DELs hit).
	Keys uint64
	// Shards is the worker count of both servers (default 4).
	Shards int
	// LogCap bounds the primary's replication log (default 64 — small, so
	// some crashes push the replica off the log tail and force the
	// re-snapshot path instead of a resume).
	LogCap int
	// PoolSize is each server's pool size in bytes (default 64 MiB).
	PoolSize int
	// Profile names the media profile (empty = default).
	Profile string
}

func (c *ReplayConfig) setDefaults() {
	if c.Engine == "" {
		c.Engine = "SpecSPMT"
	}
	if c.Rounds == 0 {
		c.Rounds = 4
	}
	if c.TxPerRound == 0 {
		c.TxPerRound = 120
	}
	if c.Keys == 0 {
		c.Keys = 64
	}
	if c.Shards == 0 {
		c.Shards = 4
	}
	if c.LogCap == 0 {
		c.LogCap = 64
	}
	if c.PoolSize == 0 {
		c.PoolSize = 64 << 20
		if c.Engine == "SpecHPMT" {
			// The hardware engine reserves per-thread spec+undo rings
			// (~32 MiB each at the §5.2.1 defaults); four shards need a
			// log area no smaller pool provides.
			c.PoolSize = 256 << 20
		}
	}
}

// ReplayEngines returns the engines the replica-replay torture runs on: the
// threaded-pool-capable schemes whose multi-thread recovery is sound under
// the server's cross-shard MULTIs, which commit other shards' cells on the
// executing shard's thread. SpecSPMT/SpecSPMT-DP (merged timestamp-ordered
// recovery, §4.1) and SpecHPMT (the §5.2.2 cluster protocol) order such
// writes across threads; PMDK's undo recovery never replays committed data,
// so independent per-thread recovery of a quiesced pool is write-free. SPHT
// is excluded: its per-thread redo replay carries no cross-thread ordering,
// so one thread's unreplayed older record can regress another thread's
// newer committed write.
func ReplayEngines() []string {
	return []string{"SpecSPMT", "SpecSPMT-DP", "SpecHPMT", "PMDK"}
}

// ReplayReport summarises a replica-replay torture run.
type ReplayReport struct {
	Engine    string
	Seed      uint64
	Rounds    int
	Committed int    // client transactions committed on the primary
	Crashes   int    // replica power failures injected
	Snapshots uint64 // snapshot bootstraps across all incarnations
	Resumes   uint64 // incarnations that tailed via cursor resume alone
	// FailedAt is the zero-based power-fail point index at which a
	// recovery checker first failed, -1 when the run was clean.
	FailedAt   int
	Violations []string
	// Checks is the recovery-checker summary for the run.
	Checks recovery.Summary
}

// Ok reports whether the run observed no divergence.
func (r ReplayReport) Ok() bool { return len(r.Violations) == 0 }

// String renders a one-line summary.
func (r ReplayReport) String() string {
	status := "OK"
	if !r.Ok() {
		status = fmt.Sprintf("FAILED at power-fail point %d (%d violations)", r.FailedAt, len(r.Violations))
	}
	return fmt.Sprintf("replay %-12s seed=%-4d rounds=%d committed=%d crashes=%d snaps=%d resumes=%d: %s",
		r.Engine, r.Seed, r.Rounds, r.Committed, r.Crashes, r.Snapshots, r.Resumes, status)
}

// ReplicaReplay tortures the replication replay path: it drives a primary
// with random SET/DEL/MULTI traffic (tracking a committed-state oracle),
// crashes the replica's pool while it still lags the primary, recovers it,
// restarts tailing from the durable cursor, and verifies — after every
// crash — that the caught-up replica serves exactly the oracle state.
func ReplicaReplay(cfg ReplayConfig) (ReplayReport, error) {
	cfg.setDefaults()
	rep := ReplayReport{Engine: cfg.Engine, Seed: cfg.Seed, Rounds: cfg.Rounds, FailedAt: -1}
	rng := sim.NewRand(cfg.Seed)

	prim, err := server.New(server.Config{
		Engine: cfg.Engine, Profile: cfg.Profile, Shards: cfg.Shards, PoolSize: cfg.PoolSize,
	})
	if err != nil {
		return rep, err
	}
	defer prim.Close()
	pln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	go prim.Serve(pln)
	primary := repl.NewPrimary(prim, repl.PrimaryOptions{LogCap: cfg.LogCap})
	defer primary.Close()
	if err := primary.Start("127.0.0.1:0"); err != nil {
		return rep, err
	}

	rsrv, err := server.New(server.Config{
		Engine: cfg.Engine, Profile: cfg.Profile, Shards: cfg.Shards, PoolSize: cfg.PoolSize,
	})
	if err != nil {
		return rep, err
	}
	defer rsrv.Close()
	rln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return rep, err
	}
	go rsrv.Serve(rln)

	c, err := server.Dial(pln.Addr().String(), 5*time.Second)
	if err != nil {
		return rep, err
	}
	defer c.Close()

	// The committed-state oracle lives inside a recovery.KV checker: its
	// Check hands the snapshot to the replica server, which freezes all
	// shards and compares every hash map against it (exact values, no lost
	// or resurrected keys) on top of structural validation.
	kv := recovery.KV("hashmap", func(expect map[uint64]uint64) error {
		return rsrv.CheckRecovered(expect)
	})
	oracle := kv.Live()

	// Seed some state before the replica exists, so its first handshake
	// exercises the snapshot bootstrap rather than an empty resume.
	for i := 0; i < 20; i++ {
		k, v := rng.Uint64()%cfg.Keys, rng.Uint64()
		if _, err := c.Set(k, v); err != nil {
			return rep, err
		}
		oracle[k] = v
		rep.Committed++
	}

	newReplica := func() (*repl.Replica, error) {
		r, err := repl.NewReplica(rsrv, primary.Addr().String(), repl.ReplicaOptions{
			RetryEvery: 20 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		r.Start()
		return r, nil
	}
	replica, err := newReplica()
	if err != nil {
		return rep, err
	}
	defer func() { replica.Close() }()

	// Checker registry for the replica's pool. The cursor checker closes
	// over the replica variable because each crash round builds a fresh
	// incarnation; the heap and spec-log checkers go through the server's
	// pool, which persists across crashes.
	rpool := rsrv.Pool()
	reg := recovery.NewRegistry("replay/" + cfg.Engine)
	reg.Register(
		kv,
		recovery.Func("repl.cursor", nil, func() error {
			return replica.Applier().CheckRecovered(primary.Log().Head())
		}),
		recovery.Heap("pmalloc.data", rpool.DataHeap()),
		recovery.Heap("pmalloc.log", rpool.LogHeap()),
		recovery.Func("spec.log", nil, func() error {
			if sp := rpool.SpecPool(); sp != nil {
				return sp.VerifyRecovered(rpool.LogHeap().Allocated)
			}
			return nil
		}),
	)

	// harvest folds the current incarnation's handshake outcome into the
	// report: bootstrap counts reset per incarnation, so read them while the
	// incarnation is still the stats hook. An incarnation that bootstrapped
	// zero times tailed purely by resuming from its durable cursor.
	harvest := func() {
		if s := statOf(rln.Addr().String(), "repl_snapshots"); s > 0 {
			rep.Snapshots += s
		} else {
			rep.Resumes++
		}
	}

	burst := func(round int) error {
		nTx := rng.Intn(cfg.TxPerRound) + cfg.TxPerRound/2
		for i := 0; i < nTx; i++ {
			if err := randomTx(c, rng, cfg.Keys, oracle); err != nil {
				return fmt.Errorf("crashtest: round %d tx %d: %w", round, i, err)
			}
			rep.Committed++
		}
		return nil
	}

	for round := 0; round < cfg.Rounds; round++ {
		// Even rounds write while the replica tails live, then crash it —
		// replay may be in flight, and the next incarnation resumes from the
		// durable cursor. Odd rounds write while the replica is down: bursts
		// larger than LogCap push its cursor off the bounded log's tail, so
		// the next incarnation is refused a resume and must re-snapshot.
		writeWhileDown := round%2 == 1
		if !writeWhileDown {
			if err := burst(round); err != nil {
				return rep, err
			}
		}
		harvest()
		replica.Close()
		if err := rsrv.Crash(rng.Uint64()); err != nil {
			return rep, fmt.Errorf("crashtest: replica crash %d: %w", round, err)
		}
		rep.Crashes++
		if writeWhileDown {
			if err := burst(round); err != nil {
				return rep, err
			}
		}
		if replica, err = newReplica(); err != nil {
			return rep, err
		}
		if err := waitCaughtUp(replica, primary, 30*time.Second); err != nil {
			return rep, err
		}
		if replica.Applier().PrimaryID() == 0 {
			return rep, fmt.Errorf("crashtest: round %d: caught up without adopting a primary id", round)
		}

		// The caught-up replica must pass every registered checker: it
		// serves exactly the oracle state, the durable cursor decodes
		// sanely, and the allocator and spec-log metadata verify. The
		// snapshot is taken here, not before the crash, because the oracle
		// keeps moving while the replica is down — the contract is over the
		// caught-up state.
		reg.Snapshot()
		if err := reg.Check(); err != nil {
			rep.Violations = append(rep.Violations, fmt.Sprintf("round %d: %v", round, err))
			rep.FailedAt = reg.Points() - 1
			rep.Checks = reg.Summary()
			return rep, nil
		}
	}
	harvest()
	rep.Checks = reg.Summary()
	return rep, nil
}

// randomTx issues one random client request against the primary and folds
// its committed effect into the oracle.
func randomTx(c *server.Client, rng *sim.Rand, keys uint64, oracle map[uint64]uint64) error {
	switch rng.Intn(10) {
	case 0, 1: // DEL
		k := rng.Uint64() % keys
		if _, err := c.Del(k); err != nil {
			return err
		}
		delete(oracle, k)
	case 2, 3: // cross-shard MULTI of SETs (and sometimes a DEL)
		n := rng.Intn(4) + 2
		ops := make([]server.Op, n)
		for i := range ops {
			k := rng.Uint64() % keys
			if rng.Intn(4) == 0 {
				ops[i] = server.Op{Kind: server.OpDel, Key: k}
			} else {
				ops[i] = server.Op{Kind: server.OpSet, Key: k, Arg1: rng.Uint64()}
			}
		}
		results, _, err := c.Exec(ops)
		if err != nil {
			return err
		}
		for i, op := range ops {
			switch {
			case op.Kind == server.OpSet && results[i].Status == server.StatusOK:
				oracle[op.Key] = op.Arg1
			case op.Kind == server.OpDel && results[i].Status == server.StatusOK:
				delete(oracle, op.Key)
			}
		}
	default: // SET
		k, v := rng.Uint64()%keys, rng.Uint64()
		if _, err := c.Set(k, v); err != nil {
			return err
		}
		oracle[k] = v
	}
	return nil
}

func waitCaughtUp(r *repl.Replica, p *repl.Primary, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if r.AppliedLSN() >= p.Log().Head() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("crashtest: replica stuck at lsn %d, primary head %d",
				r.AppliedLSN(), p.Log().Head())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func statOf(addr, name string) uint64 {
	c, err := server.Dial(addr, 2*time.Second)
	if err != nil {
		return 0
	}
	defer c.Close()
	nums, _, err := c.Stats()
	if err != nil {
		return 0
	}
	return nums[name]
}
