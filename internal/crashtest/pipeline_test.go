package crashtest

import (
	"fmt"
	"testing"
)

// TestSpecPipelinePowerFail is the crash-safety half of the server's
// pipelined group commit: power failures with unretired speculative windows
// outstanding (and sometimes an open transaction) must recover to a clean
// prefix that includes everything a retired fence acknowledged.
func TestSpecPipelinePowerFail(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		rep, err := RunSpecPipeline(Config{Seed: seed, Rounds: 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !rep.Ok() {
			t.Fatalf("seed %d: %s\n%v", seed, rep, rep.Violations)
		}
		if rep.Crashes != 4 {
			t.Fatalf("seed %d: crashes=%d", seed, rep.Crashes)
		}
		if rep.Committed == 0 {
			t.Fatalf("seed %d: no speculative commits ran", seed)
		}
	}
}

// TestSpecPipelineDeterministic pins reproducibility from the seed alone.
func TestSpecPipelineDeterministic(t *testing.T) {
	a, err := RunSpecPipeline(Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSpecPipeline(Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same seed produced different reports:\n%s\n%s", a, b)
	}
}
