package sim

// Rand is a small deterministic pseudo-random generator (SplitMix64 for
// seeding, xorshift* for the stream). Experiments must not depend on the
// standard library's global generator so that every run of a given seed
// produces identical transaction streams and crash points.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRand(seed uint64) *Rand {
	// SplitMix64 scramble so that small consecutive seeds give uncorrelated
	// streams.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	return &Rand{state: z}
}

// Uint64 returns the next value in the stream.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). n must be positive.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Split derives an independent generator from this one, for handing to a
// sub-component without coupling its consumption to the parent stream.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64())
}

// Zipf draws from a Zipf-like distribution over [0, n) with skew s >= 0.
// s == 0 degenerates to uniform. Higher s concentrates mass on low indices;
// the stamp workload generators use it to model data hotness.
type Zipf struct {
	n   int
	cdf []float64
	rng *Rand
}

// NewZipf builds a sampler over [0, n) with exponent s.
func NewZipf(rng *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("sim: NewZipf with non-positive n")
	}
	z := &Zipf{n: n, rng: rng}
	if s <= 0 {
		return z
	}
	z.cdf = make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1.0 / powFloat(float64(i+1), s)
		z.cdf[i] = sum
	}
	for i := range z.cdf {
		z.cdf[i] /= sum
	}
	return z
}

// Next draws the next sample.
func (z *Zipf) Next() int {
	if z.cdf == nil {
		return z.rng.Intn(z.n)
	}
	u := z.rng.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// powFloat is a minimal x**y for y >= 0 avoiding a math import dependency
// spreading through hot paths; precision needs here are modest.
func powFloat(x, y float64) float64 {
	// Exponent values used by workloads are small (0..2 in steps of 0.1), so
	// an exp/log-free approach is unnecessary; use the identity via repeated
	// squaring on the integer part and a short series elsewhere would be
	// overkill. Delegate to the obvious loop for integer exponents and
	// linear interpolation between them otherwise.
	yi := int(y)
	p := 1.0
	for i := 0; i < yi; i++ {
		p *= x
	}
	frac := y - float64(yi)
	if frac == 0 {
		return p
	}
	// Linear interpolation between x**yi and x**(yi+1) is adequate for a
	// hotness skew knob.
	return p * (1 + frac*(x-1))
}
