package sim

import (
	"strings"
	"testing"
)

// TestOptaneADRGoldenTable1 pins the default profile's hardware column to
// the paper's Table 1 so no future profile refactor can drift the numbers:
// 150 ns PM read, 500 ns random write, 150 ns sequential write, 512 B WPQ.
func TestOptaneADRGoldenTable1(t *testing.T) {
	p := MustProfile("optane-adr")
	if p.HW.PMRead != 150 {
		t.Errorf("PM read = %d ns, Table 1 says 150", p.HW.PMRead)
	}
	if p.HW.PMWriteRandom != 500 {
		t.Errorf("PM random write = %d ns, Table 1 says 500", p.HW.PMWriteRandom)
	}
	if p.HW.PMWriteSeq != 150 {
		t.Errorf("PM sequential write = %d ns, Table 1 says 150", p.HW.PMWriteSeq)
	}
	if got := p.WPQBytes(PlatformHW); got != 512 {
		t.Errorf("WPQ = %d B, Table 1 says 512", got)
	}
	if p.Domain != DomainADR {
		t.Errorf("default domain = %v, want ADR", p.Domain)
	}
	// The two columns must be exactly the historical latency tables, so
	// every pre-profile experiment reproduces byte-for-byte.
	if p.HW != DefaultLatency() {
		t.Errorf("HW column diverged from DefaultLatency: %+v", p.HW)
	}
	if p.SW != OptaneLatency() {
		t.Errorf("SW column diverged from OptaneLatency: %+v", p.SW)
	}
	if DefaultProfile().Name != DefaultProfileName {
		t.Errorf("DefaultProfile is %q", DefaultProfile().Name)
	}
}

func TestBuiltinProfileRegistry(t *testing.T) {
	want := []string{"optane-adr", "optane-eadr", "cxl-pm", "dram-adr", "slow-nvm"}
	names := ProfileNames()
	if len(names) < len(want) {
		t.Fatalf("registry holds %v, want at least %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("built-in order %v, want prefix %v", names, want)
		}
		p, ok := ProfileByName(n)
		if !ok {
			t.Fatalf("built-in %q missing", n)
		}
		if p.Name != n || p.Desc == "" {
			t.Fatalf("built-in %q malformed: %+v", n, p)
		}
		for _, pl := range []Platform{PlatformHW, PlatformSW} {
			l := p.Latency(pl)
			if l.PMRead <= 0 || l.PMWriteRandom <= 0 || l.PMWriteSeq <= 0 || l.WPQLines <= 0 || l.AcceptNs <= 0 {
				t.Fatalf("%q/%d latency column has non-positive entries: %+v", n, pl, l)
			}
			if l.PMWriteSeq > l.PMWriteRandom {
				t.Fatalf("%q/%d: sequential drains must not cost more than random: %+v", n, pl, l)
			}
		}
	}
	if MustProfile("optane-eadr").Domain != DomainEADR {
		t.Error("optane-eadr must have the eADR domain")
	}
	if MustProfile("cxl-pm").Domain != DomainFar {
		t.Error("cxl-pm must have the far-memory (no-WPQ) domain")
	}
}

func TestRegisterProfileValidation(t *testing.T) {
	if err := RegisterProfile(Profile{}); err == nil {
		t.Error("empty-name profile accepted")
	}
	if err := RegisterProfile(Profile{Name: "optane-adr"}); err == nil {
		t.Error("duplicate registration accepted")
	}
	ext := Profile{Name: "test-external", Desc: "registry test", HW: DefaultLatency(), SW: OptaneLatency()}
	if err := RegisterProfile(ext); err != nil {
		t.Fatalf("external registration failed: %v", err)
	}
	got, ok := ProfileByName("test-external")
	if !ok || got.Name != "test-external" {
		t.Fatal("external profile not retrievable")
	}
	names := ProfileNames()
	if names[len(names)-1] != "test-external" {
		t.Fatalf("external profile not last in %v", names)
	}
}

func TestProfileTableListsEveryBuiltin(t *testing.T) {
	table := ProfileTable()
	for _, n := range []string{"optane-adr", "optane-eadr", "cxl-pm", "dram-adr", "slow-nvm"} {
		if !strings.Contains(table, n) {
			t.Errorf("ProfileTable missing %q:\n%s", n, table)
		}
	}
}

func TestDomainString(t *testing.T) {
	for d, want := range map[Domain]string{DomainADR: "ADR", DomainEADR: "eADR", DomainFar: "far", Domain(9): "Domain(9)"} {
		if got := d.String(); got != want {
			t.Errorf("Domain(%d).String() = %q, want %q", d, got, want)
		}
	}
}
