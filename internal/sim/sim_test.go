package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("new clock at %d, want 0", c.Now())
	}
	c.Advance(100)
	if c.Now() != 100 {
		t.Fatalf("after Advance(100): %d", c.Now())
	}
	c.Advance(-50)
	if c.Now() != 100 {
		t.Fatalf("negative advance moved clock: %d", c.Now())
	}
	c.AdvanceTo(80)
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo past time moved clock backward: %d", c.Now())
	}
	c.AdvanceTo(250)
	if c.Now() != 250 {
		t.Fatalf("AdvanceTo(250): %d", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("Reset: %d", c.Now())
	}
}

func TestClockMonotonic(t *testing.T) {
	f := func(steps []int16) bool {
		var c Clock
		prev := c.Now()
		for _, s := range steps {
			c.Advance(int64(s))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultLatency(t *testing.T) {
	l := DefaultLatency()
	if l.PMRead != 150 || l.PMWriteRandom != 500 {
		t.Fatalf("Table 1 latencies wrong: %+v", l)
	}
	if l.WPQLines != 8 {
		t.Fatalf("WPQ should be 512B = 8 lines, got %d", l.WPQLines)
	}
	if l.PMWriteSeq >= l.PMWriteRandom {
		t.Fatalf("sequential PM writes must be cheaper than random: %+v", l)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d collisions in 1000 draws", same)
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestIntnRange(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%100) + 1
		r := NewRand(seed)
		for i := 0; i < 50; i++ {
			v := r.Intn(m)
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestZipfUniformWhenZeroSkew(t *testing.T) {
	r := NewRand(1)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("bucket %d has %d draws; uniform expected ~10000", i, c)
		}
	}
}

func TestZipfSkewConcentrates(t *testing.T) {
	r := NewRand(1)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("skewed Zipf should favour low indices: c[0]=%d c[50]=%d", counts[0], counts[50])
	}
	head := counts[0] + counts[1] + counts[2]
	if head < 20000 {
		t.Fatalf("head mass too small for skew 1.2: %d/100000", head)
	}
}

func TestZipfRangeProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		m := int(n%50) + 1
		z := NewZipf(NewRand(seed), m, 1.0)
		for i := 0; i < 100; i++ {
			v := z.Next()
			if v < 0 || v >= m {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitIndependence(t *testing.T) {
	a := NewRand(5)
	b := a.Split()
	// Consuming from b must not change a's future relative to a clone that
	// split at the same point.
	a2 := NewRand(5)
	b2 := a2.Split()
	_ = b2
	for i := 0; i < 100; i++ {
		b.Uint64()
	}
	for i := 0; i < 100; i++ {
		if a.Uint64() != a2.Uint64() {
			t.Fatal("consuming a split stream perturbed the parent")
		}
	}
}

func TestZipfSingleBucket(t *testing.T) {
	z := NewZipf(NewRand(1), 1, 1.5)
	for i := 0; i < 100; i++ {
		if z.Next() != 0 {
			t.Fatal("n=1 Zipf must always return 0")
		}
	}
}

func TestOptaneLatencyShape(t *testing.T) {
	o := OptaneLatency()
	d := DefaultLatency()
	if o.PMWriteRandom <= d.PMWriteRandom {
		t.Fatal("Optane random persists should cost more than the DDR-class simulator profile")
	}
	if o.PMWriteSeq >= o.PMWriteRandom/10 {
		t.Fatal("Optane sequential log appends should be an order of magnitude cheaper than random")
	}
	if o.AcceptNs <= 0 || d.AcceptNs <= 0 {
		t.Fatal("acceptance RTT must be positive")
	}
}
