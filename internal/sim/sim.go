// Package sim provides the virtual-time primitives shared by the persistent
// memory device model and the hardware model: a per-core virtual clock and
// the latency configuration taken from Table 1 of the SpecPMT paper.
//
// All durations are virtual nanoseconds. Nothing in this package reads the
// wall clock; experiments are fully deterministic given a seed.
package sim

// Clock is a virtual clock measured in nanoseconds. A Clock belongs to one
// logical core; concurrent goroutines must each own their own Clock.
type Clock struct {
	now int64
}

// Now returns the current virtual time in nanoseconds.
func (c *Clock) Now() int64 { return c.now }

// Advance moves the clock forward by ns nanoseconds. Negative values are
// ignored so cost formulas may clamp freely.
func (c *Clock) Advance(ns int64) {
	if ns > 0 {
		c.now += ns
	}
}

// AdvanceTo moves the clock forward to time t if t is in the future.
func (c *Clock) AdvanceTo(t int64) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero. Used between experiment runs.
func (c *Clock) Reset() { c.now = 0 }

// Latency holds the timing model of the simulated machine. The defaults
// mirror Table 1 of the paper: 150 ns persistent memory read latency, 500 ns
// write latency, a 512-byte (8-line) write pending queue, and DRAM-class
// costs for cache-resident accesses. Sequential PM writes are cheaper than
// random ones, following the empirical Optane characterisation the paper
// cites ([78], [11]).
type Latency struct {
	// CacheRead is the cost of reading a cache-resident line.
	CacheRead int64
	// CacheWrite is the cost of a store that hits the cache hierarchy.
	CacheWrite int64
	// PMRead is the cost of reading a line from persistent memory.
	PMRead int64
	// PMWriteRandom is the device-side drain cost of a random-address line.
	PMWriteRandom int64
	// PMWriteSeq is the drain cost of a line contiguous with the previous
	// drained line (sequential pattern, e.g. log appends).
	PMWriteSeq int64
	// FlushIssue is the front-end cost of issuing one CLWB.
	FlushIssue int64
	// FenceIssue is the front-end cost of issuing one SFENCE, excluding the
	// time spent waiting for outstanding flushes to be accepted.
	FenceIssue int64
	// AcceptNs is the round-trip for a flushed line to be accepted into the
	// ADR persistence domain (the memory controller's write pending queue).
	// An SFENCE waits for acceptance of all prior flushes — not for the
	// media-level drain, which proceeds asynchronously and only surfaces as
	// backpressure when the WPQ fills.
	AcceptNs int64
	// WPQLines is the write pending queue capacity in cache lines
	// (512 bytes / 64-byte lines = 8 in the paper's configuration).
	WPQLines int
}

// OptaneLatency approximates the software platform of §7.1.2: a real Intel
// Optane DC persistent memory machine. Random-address persists are far more
// expensive than the DDR-class parameters of the Gem5 configuration —
// flush-plus-fence round trips on Optane take "thousands of CPU cycles"
// (§2.2) — while sequential log appends benefit from on-DIMM write
// combining.
func OptaneLatency() Latency {
	return Latency{
		CacheRead:     1,
		CacheWrite:    1,
		PMRead:        300,
		PMWriteRandom: 1500,
		PMWriteSeq:    50,
		FlushIssue:    20,
		FenceIssue:    30,
		AcceptNs:      300,
		WPQLines:      8,
	}
}

// DefaultLatency returns the paper's Table 1 configuration.
func DefaultLatency() Latency {
	return Latency{
		CacheRead:     1,
		CacheWrite:    1,
		PMRead:        150,
		PMWriteRandom: 500,
		PMWriteSeq:    150,
		FlushIssue:    10,
		FenceIssue:    5,
		AcceptNs:      100,
		WPQLines:      8,
	}
}
