package sim

import (
	"fmt"
	"strings"
	"sync"
)

// Domain names the persistence-domain boundary of a media profile: which
// part of the memory hierarchy survives power failure without software help.
type Domain uint8

const (
	// DomainADR is the paper's platform (asynchronous DRAM refresh): the
	// memory controller's write pending queue is inside the persistence
	// domain. A flushed line is durable once ACCEPTED by the WPQ; SFENCE
	// waits for acceptance, and the media-level drain proceeds
	// asynchronously.
	DomainADR Domain = iota
	// DomainEADR extends the persistence domain to the CPU caches (§5.3.1,
	// extended ADR): every store is immediately persistent, CLWB degenerates
	// to a hint, and SFENCE costs only its issue latency. The paper notes
	// eADR adoption is limited by battery cost; the mode exists for
	// sensitivity experiments.
	DomainEADR
	// DomainFar has no persistent write queue at all (no-WPQ far memory,
	// e.g. persistent memory behind a CXL link whose device-side buffers are
	// not power-fail safe): a flushed line is durable only after the
	// media-level drain completes, so SFENCE stalls until write-back — the
	// deeper fence stalls of the CXL-PM sensitivity discussion.
	DomainFar
)

// String names the domain for tables and JSON reports.
func (d Domain) String() string {
	switch d {
	case DomainADR:
		return "ADR"
	case DomainEADR:
		return "eADR"
	case DomainFar:
		return "far"
	}
	return fmt.Sprintf("Domain(%d)", uint8(d))
}

// Platform selects which of a profile's two latency columns drives timing,
// mirroring the two columns of the paper's Table 1.
type Platform uint8

const (
	// PlatformHW is the simulator platform (Table 1 "hardware" column): the
	// Gem5 configuration the hardware designs are evaluated on.
	PlatformHW Platform = iota
	// PlatformSW is the measured-machine platform (Table 1 "software"
	// column): the real Optane-class box the software engines run on, with
	// far more expensive random persists (§2.2).
	PlatformSW
)

// Profile is a named media model: the two Table 1 latency columns, the
// persistence-domain boundary, and the WPQ geometry (Latency.WPQLines). It
// is the single knob every layer — pmem device, hwsim CPUs, harness runs,
// and the CLIs — resolves timing and flush/fence semantics through.
type Profile struct {
	// Name identifies the profile in registries, flags, and bench JSON.
	Name string
	// Desc is a one-line description for `-profile list`.
	Desc string
	// HW is the simulator-platform timing (Table 1 "hardware" column).
	HW Latency
	// SW is the measured-machine timing (Table 1 "software" column).
	SW Latency
	// Domain is the persistence-domain boundary.
	Domain Domain
}

// Latency returns the timing column for the given platform.
func (p Profile) Latency(pl Platform) Latency {
	if pl == PlatformSW {
		return p.SW
	}
	return p.HW
}

// WPQBytes returns the write pending queue capacity in bytes for the given
// platform (lines × 64-byte line size).
func (p Profile) WPQBytes(pl Platform) int { return p.Latency(pl).WPQLines * 64 }

var (
	profMu   sync.RWMutex
	profReg  = map[string]Profile{}
	profList []string // registration order: built-ins first
)

// RegisterProfile adds a media profile to the registry so experiments can
// select it by name. Names must be unique and non-empty.
func RegisterProfile(p Profile) error {
	if p.Name == "" {
		return fmt.Errorf("sim: profile name must be non-empty")
	}
	profMu.Lock()
	defer profMu.Unlock()
	if _, dup := profReg[p.Name]; dup {
		return fmt.Errorf("sim: profile %q already registered", p.Name)
	}
	profReg[p.Name] = p
	profList = append(profList, p.Name)
	return nil
}

// ProfileByName looks a profile up by name.
func ProfileByName(name string) (Profile, bool) {
	profMu.RLock()
	defer profMu.RUnlock()
	p, ok := profReg[name]
	return p, ok
}

// MustProfile returns the named profile or panics — for tests and CLI
// wiring where the name is a literal.
func MustProfile(name string) Profile {
	p, ok := ProfileByName(name)
	if !ok {
		panic(fmt.Sprintf("sim: unknown media profile %q (have %s)", name, strings.Join(ProfileNames(), ", ")))
	}
	return p
}

// ProfileNames lists registered profile names: built-ins in definition
// order, then external registrations in registration order.
func ProfileNames() []string {
	profMu.RLock()
	defer profMu.RUnlock()
	return append([]string(nil), profList...)
}

// Profiles returns every registered profile in ProfileNames order.
func Profiles() []Profile {
	profMu.RLock()
	defer profMu.RUnlock()
	out := make([]Profile, 0, len(profList))
	for _, n := range profList {
		out = append(out, profReg[n])
	}
	return out
}

// DefaultProfileName is the profile every layer resolves to when none is
// requested: the paper's Table 1 machine.
const DefaultProfileName = "optane-adr"

// DefaultProfile returns the built-in default (optane-adr): Table 1
// latencies on an ADR platform — the exact model every pre-profile
// experiment ran on.
func DefaultProfile() Profile { return MustProfile(DefaultProfileName) }

// builtinProfiles defines the shipped media models. optane-adr MUST stay
// byte-for-byte equivalent to the historical DefaultLatency/OptaneLatency
// pair (pinned by TestOptaneADRGoldenTable1); the others span the
// sensitivity axes the paper discusses: persistence-domain boundary (eADR),
// far-memory CXL attachment, battery-backed DRAM, and denser-but-slower NVM.
func builtinProfiles() []Profile {
	return []Profile{
		{
			Name:   "optane-adr",
			Desc:   "Table 1 default: Optane DC PM behind ADR, 512 B WPQ",
			HW:     DefaultLatency(),
			SW:     OptaneLatency(),
			Domain: DomainADR,
		},
		{
			Name:   "optane-eadr",
			Desc:   "Optane timing with persistent caches (§5.3.1 eADR): flushes are hints, fences issue-only",
			HW:     DefaultLatency(),
			SW:     OptaneLatency(),
			Domain: DomainEADR,
		},
		{
			Name: "cxl-pm",
			Desc: "CXL-attached PM: link-lengthened reads/writes, no power-fail-safe device buffer (fences wait for media drain)",
			HW: Latency{
				CacheRead: 1, CacheWrite: 1,
				PMRead: 400, PMWriteRandom: 900, PMWriteSeq: 300,
				FlushIssue: 10, FenceIssue: 5, AcceptNs: 250, WPQLines: 16,
			},
			SW: Latency{
				CacheRead: 1, CacheWrite: 1,
				PMRead: 600, PMWriteRandom: 2400, PMWriteSeq: 150,
				FlushIssue: 20, FenceIssue: 30, AcceptNs: 500, WPQLines: 16,
			},
			Domain: DomainFar,
		},
		{
			Name: "dram-adr",
			Desc: "battery-backed DRAM (NVDIMM-N class): DRAM-speed media behind ADR",
			HW: Latency{
				CacheRead: 1, CacheWrite: 1,
				PMRead: 80, PMWriteRandom: 100, PMWriteSeq: 60,
				FlushIssue: 10, FenceIssue: 5, AcceptNs: 30, WPQLines: 8,
			},
			SW: Latency{
				CacheRead: 1, CacheWrite: 1,
				PMRead: 100, PMWriteRandom: 150, PMWriteSeq: 80,
				FlushIssue: 10, FenceIssue: 10, AcceptNs: 60, WPQLines: 8,
			},
			Domain: DomainADR,
		},
		{
			Name: "slow-nvm",
			Desc: "dense, slow NVM: high media latencies and a shallow 256 B WPQ",
			HW: Latency{
				CacheRead: 1, CacheWrite: 1,
				PMRead: 400, PMWriteRandom: 2000, PMWriteSeq: 600,
				FlushIssue: 10, FenceIssue: 5, AcceptNs: 400, WPQLines: 4,
			},
			SW: Latency{
				CacheRead: 1, CacheWrite: 1,
				PMRead: 800, PMWriteRandom: 4000, PMWriteSeq: 800,
				FlushIssue: 20, FenceIssue: 30, AcceptNs: 800, WPQLines: 4,
			},
			Domain: DomainADR,
		},
	}
}

func init() {
	for _, p := range builtinProfiles() {
		if err := RegisterProfile(p); err != nil {
			panic(err)
		}
	}
}

// ProfileTable renders the registry as an aligned text table — the shared
// body of every CLI's `-profile list`.
func ProfileTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-6s %9s %10s %9s %6s  %s\n",
		"profile", "domain", "read(ns)", "wr-rnd(ns)", "wr-seq(ns)", "wpq(B)", "description")
	for _, p := range Profiles() {
		hw := p.HW
		fmt.Fprintf(&b, "%-12s %-6s %9d %10d %9d %6d  %s\n",
			p.Name, p.Domain, hw.PMRead, hw.PMWriteRandom, hw.PMWriteSeq, p.WPQBytes(PlatformHW), p.Desc)
	}
	b.WriteString("(hardware-column latencies shown; each profile also carries the software-platform column)\n")
	return b.String()
}
