package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON shape
// Perfetto and chrome://tracing ingest). Timestamps and durations are
// microseconds; the simulator's nanosecond clock maps to fractional µs.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level export object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

const chromePID = 1

func us(ns int64) float64 { return float64(ns) / 1000.0 }

func durPtr(ns int64) *float64 {
	d := us(ns)
	return &d
}

// chromeOf translates one internal event. ok is false for kinds that do not
// export (none currently).
func chromeOf(e Event, trackName func(int) string) (chromeEvent, bool) {
	ce := chromeEvent{PID: chromePID, TID: e.Track, TS: us(e.TS)}
	switch e.Kind {
	case EvTxBegin:
		ce.Name, ce.Cat, ce.Ph, ce.Scope = "tx-begin", "tx", "i", "t"
	case EvTx:
		ce.Name, ce.Cat, ce.Ph = "tx", "tx", "X"
		ce.Dur = durPtr(e.Dur)
		ce.Args = map[string]any{"stores": e.A, "log_bytes": e.B}
	case EvCommit:
		ce.Name, ce.Cat, ce.Ph = "commit", "tx", "X"
		ce.Dur = durPtr(e.Dur)
		ce.Args = map[string]any{"stores": e.A, "log_bytes": e.B}
	case EvTxAbort:
		ce.Name, ce.Cat, ce.Ph, ce.Scope = "tx-abort", "tx", "i", "t"
	case EvLogAppend:
		ce.Name, ce.Cat, ce.Ph, ce.Scope = "log-append", "log", "i", "t"
		ce.Args = map[string]any{"bytes": e.A}
	case EvFlush:
		ce.Name, ce.Cat, ce.Ph = "flush", "pmem", "X"
		ce.Dur = durPtr(e.Dur)
		ce.Args = map[string]any{"lines": e.A, "kind": kindName(e.B), "wpq_depth": e.C}
	case EvFence:
		ce.Name, ce.Cat, ce.Ph = "fence", "pmem", "X"
		ce.Dur = durPtr(e.Dur)
		ce.Args = map[string]any{"stall_ns": e.Dur, "wpq_depth": e.A}
	case EvDrain:
		ce.Name, ce.Cat, ce.Ph = "drain", "wpq", "X"
		ce.Dur = durPtr(e.Dur)
		pattern := "rand"
		if e.C != 0 {
			pattern = "seq"
		}
		ce.Args = map[string]any{"line": e.A, "kind": kindName(e.B), "pattern": pattern}
	case EvReclaim:
		ce.Name, ce.Cat, ce.Ph = "reclaim", "log", "X"
		ce.Dur = durPtr(e.Dur)
		ce.Args = map[string]any{"stale_entries": e.A, "released_bytes": e.B}
	case EvCrash:
		ce.Name, ce.Cat, ce.Ph, ce.Scope = "crash", "device", "i", "g"
	case EvRecover:
		ce.Name, ce.Cat, ce.Ph = "recover", "device", "X"
		ce.Dur = durPtr(e.Dur)
	case EvWPQDepth:
		ce.Name, ce.Ph = "wpq-depth:"+trackName(e.Track), "C"
		ce.Args = map[string]any{"lines": e.A}
	case EvLogLive:
		ce.Name, ce.Ph = "log-live:"+trackName(e.Track), "C"
		ce.Args = map[string]any{"bytes": e.A}
	case EvHeapLive:
		ce.Name, ce.Ph = "heap-live:"+trackName(e.Track), "C"
		ce.Args = map[string]any{"bytes": e.A}
	case EvReplShip:
		ce.Name, ce.Cat, ce.Ph, ce.Scope = "repl-ship", "repl", "i", "t"
		ce.Args = map[string]any{"records": e.A, "bytes": e.B, "head_lsn": e.C}
	case EvReplAck:
		ce.Name, ce.Cat, ce.Ph, ce.Scope = "repl-ack", "repl", "i", "t"
		ce.Args = map[string]any{"acked_lsn": e.A, "lag_records": e.B}
	case EvReplApply:
		ce.Name, ce.Cat, ce.Ph, ce.Scope = "repl-apply", "repl", "i", "t"
		ce.Args = map[string]any{"records": e.A, "ops": e.B, "applied_lsn": e.C}
	default:
		return ce, false
	}
	return ce, true
}

// WriteChrome exports the buffered events as Chrome trace-event JSON. The
// output opens directly in Perfetto (ui.perfetto.dev) or chrome://tracing:
// one named thread per simulated core plus counter tracks for WPQ depth and
// live bytes.
func (t *Tracer) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	events := append([]Event(nil), t.events...)
	tracks := append([]string(nil), t.tracks...)
	t.mu.Unlock()

	name := func(id int) string {
		if id >= 0 && id < len(tracks) {
			return tracks[id]
		}
		return "?"
	}

	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: chromePID,
		Args: map[string]any{"name": "specpmt-sim"},
	})
	for id, tn := range tracks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: id,
			Args: map[string]any{"name": tn},
		})
	}
	// Stable order: by timestamp, then track, then original order.
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		return events[i].Track < events[j].Track
	})
	for _, e := range events {
		if ce, ok := chromeOf(e, name); ok {
			out.TraceEvents = append(out.TraceEvents, ce)
		}
	}
	return writeChromeJSON(w, out)
}

// writeChromeJSON encodes one chromeTrace — shared by the simulator export
// and the live-span export.
func writeChromeJSON(w io.Writer, out chromeTrace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
