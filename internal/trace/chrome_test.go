package trace

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenTracer builds a small, fully deterministic event stream covering
// every event kind the Chrome exporter translates.
func goldenTracer() *Tracer {
	tr := New()
	app := tr.RegisterTrack("core0")
	wpq := tr.RegisterTrack("core0.wpq")
	bg := tr.RegisterTrack("core1")
	tr.NameTrack(app, "app")
	tr.NameTrack(wpq, "app.wpq")
	tr.NameTrack(bg, "reclaimer")

	tr.TxBegin(app, 100)
	tr.LogAppend(app, 150, 96, 96)
	tr.Flush(app, 160, 190, 2, 1, 2)
	tr.WPQSample(wpq, 190, 2)
	tr.Fence(app, 200, 450, 2)
	tr.Drain(wpq, 210, 380, 7, true, 1)
	tr.Drain(wpq, 215, 440, 42, false, 0)
	tr.TxCommit(app, 140, 460, 3, 96)
	tr.Reclaim(bg, 300, 900, 5, 480)
	tr.LiveLog(app, 910, 64)
	tr.HeapSample(app, 920, 4096)

	tr.TxBegin(app, 1000)
	tr.Crash(1100)
	tr.RecoverSpan(app, 10, 250)
	tr.TxBegin(app, 300)
	tr.TxAbort(app, 320)
	return tr
}

func TestChromeGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "chrome_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Chrome export drifted from golden file (run with -update to regenerate)\ngot:\n%s", buf.String())
	}
}

// TestChromeParsesBack validates the export as Chrome trace-event JSON: a
// traceEvents array whose entries carry the required ph/ts/pid/tid fields,
// with metadata naming every track and monotone-sane timestamps.
func TestChromeParsesBack(t *testing.T) {
	var buf bytes.Buffer
	tr := goldenTracer()
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) == 0 {
		t.Fatal("no trace events exported")
	}
	names := map[string]bool{}
	for i, e := range out.TraceEvents {
		ph, ok := e["ph"].(string)
		if !ok || ph == "" {
			t.Fatalf("event %d lacks a phase: %v", i, e)
		}
		if _, ok := e["pid"].(float64); !ok {
			t.Fatalf("event %d lacks pid: %v", i, e)
		}
		if ph == "M" {
			if args, ok := e["args"].(map[string]any); ok {
				if n, ok := args["name"].(string); ok {
					names[n] = true
				}
			}
			continue
		}
		if ts, ok := e["ts"].(float64); !ok || ts < 0 {
			t.Fatalf("event %d has bad ts: %v", i, e)
		}
		if ph == "X" {
			if dur, ok := e["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("duration event %d has bad dur: %v", i, e)
			}
		}
	}
	for _, want := range []string{"specpmt-sim", "app", "app.wpq", "reclaimer"} {
		if !names[want] {
			t.Errorf("metadata does not name %q", want)
		}
	}
}
