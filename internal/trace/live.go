package trace

import (
	"io"
	"sort"
)

// LiveSpan is one wall-clock interval from a live server — the unit the
// observability plane's ring recorder exports. Unlike Event, timestamps are
// real (host-clock) nanoseconds since an arbitrary epoch, not virtual time;
// the chrome shape is shared so one trace viewer serves both the simulator
// and the running server.
type LiveSpan struct {
	// Track indexes into the tracks slice passed to WriteChromeLive.
	Track int
	// Name and Cat are the chrome event name and category.
	Name, Cat string
	// StartNs and DurNs are wall nanoseconds since the recorder's epoch.
	StartNs, DurNs int64
	// Args, when non-nil, becomes the event's args object.
	Args map[string]any
}

// WriteChromeLive exports wall-clock spans as Chrome trace-event JSON, the
// same format WriteChrome emits for the simulator: one named thread per
// track under one named process. Output opens directly in Perfetto
// (ui.perfetto.dev) or chrome://tracing.
func WriteChromeLive(w io.Writer, process string, tracks []string, spans []LiveSpan) error {
	out := chromeTrace{DisplayTimeUnit: "ns", TraceEvents: []chromeEvent{}}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: chromePID,
		Args: map[string]any{"name": process},
	})
	for id, tn := range tracks {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: chromePID, TID: id,
			Args: map[string]any{"name": tn},
		})
	}
	ordered := append([]LiveSpan(nil), spans...)
	sort.SliceStable(ordered, func(i, j int) bool {
		if ordered[i].StartNs != ordered[j].StartNs {
			return ordered[i].StartNs < ordered[j].StartNs
		}
		return ordered[i].Track < ordered[j].Track
	})
	for _, s := range ordered {
		ce := chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X", PID: chromePID,
			TID: s.Track, TS: us(s.StartNs), Dur: durPtr(s.DurNs),
			Args: s.Args,
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	return writeChromeJSON(w, out)
}
