package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestWriteChromeLive(t *testing.T) {
	spans := []LiveSpan{
		{Track: 1, Name: "batch", Cat: "server", StartNs: 2500, DurNs: 1200,
			Args: map[string]any{"jobs": 3}},
		{Track: 0, Name: "request", Cat: "server", StartNs: 2000, DurNs: 4000},
	}
	var buf bytes.Buffer
	if err := WriteChromeLive(&buf, "specpmt-live", []string{"conns-0", "shard-0"}, spans); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TID  int            `json:"tid"`
			TS   float64        `json:"ts"`
			Dur  *float64       `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if out.DisplayTimeUnit != "ns" {
		t.Fatalf("displayTimeUnit = %q, want ns", out.DisplayTimeUnit)
	}
	var threadNames, durSpans int
	for _, e := range out.TraceEvents {
		switch {
		case e.Ph == "M" && e.Name == "thread_name":
			threadNames++
		case e.Ph == "X":
			durSpans++
			if e.Dur == nil {
				t.Fatalf("span %q has no dur", e.Name)
			}
		}
	}
	if threadNames != 2 {
		t.Fatalf("thread_name metadata events = %d, want 2", threadNames)
	}
	if durSpans != 2 {
		t.Fatalf("duration spans = %d, want 2", durSpans)
	}
	// Spans are ordered by start time: the request (2000ns) precedes the
	// batch (2500ns) despite input order.
	var firstX string
	for _, e := range out.TraceEvents {
		if e.Ph == "X" {
			firstX = e.Name
			break
		}
	}
	if firstX != "request" {
		t.Fatalf("first span = %q, want request (time-ordered)", firstX)
	}
}
