package trace

import (
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, // bucket 0: everything <= 0
		{1, 1},         // [1, 2)
		{2, 2}, {3, 2}, // [2, 4)
		{4, 3}, {7, 3}, // [4, 8)
		{8, 4}, {15, 4},
		{1 << 10, 11}, {1<<11 - 1, 11},
		{1 << 41, 42}, {1<<42 - 1, 42},
		{1 << 42, HistBuckets - 1}, // last bucket absorbs the rest
		{1 << 62, HistBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	// Every bucket's bounds must round-trip through bucketOf.
	for i := 0; i < HistBuckets; i++ {
		lo, hi := BucketBounds(i)
		if got := bucketOf(lo); got != i {
			t.Errorf("bucketOf(lo=%d) = %d, want bucket %d", lo, got, i)
		}
		if i < HistBuckets-1 {
			if got := bucketOf(hi - 1); got != i {
				t.Errorf("bucketOf(hi-1=%d) = %d, want bucket %d", hi-1, got, i)
			}
			if got := bucketOf(hi); got != i+1 {
				t.Errorf("bucketOf(hi=%d) = %d, want bucket %d", hi, got, i+1)
			}
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	var h Histogram
	for _, v := range []int64{10, 20, 30, 5, 1000} {
		h.Observe(v)
	}
	if h.N != 5 {
		t.Fatalf("N = %d, want 5", h.N)
	}
	if h.Min != 5 || h.Max != 1000 {
		t.Fatalf("min/max = %d/%d, want 5/1000", h.Min, h.Max)
	}
	if h.Sum != 1065 {
		t.Fatalf("sum = %d, want 1065", h.Sum)
	}
	if got := h.Mean(); got != 213.0 {
		t.Fatalf("mean = %v, want 213", got)
	}
	if q := h.Quantile(0); q != 5 {
		t.Fatalf("q0 = %d, want min 5", q)
	}
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("q1 = %d, want max 1000", q)
	}
	// The median must land inside the observed range.
	if q := h.Quantile(0.5); q < 5 || q > 1000 {
		t.Fatalf("p50 = %d outside observed range", q)
	}
}

func TestSamplerDecimation(t *testing.T) {
	var s Sampler
	n := int64(SamplerCap*4 + 123)
	for i := int64(0); i < n; i++ {
		s.Add(i, i%1000)
	}
	if s.N != uint64(n) {
		t.Fatalf("N = %d, want %d", s.N, n)
	}
	if s.Len() > SamplerCap {
		t.Fatalf("retained %d points, cap is %d", s.Len(), SamplerCap)
	}
	if s.Len() == 0 {
		t.Fatal("decimation dropped everything")
	}
	// Peak and Last are exact regardless of decimation.
	if s.Peak != 999 {
		t.Fatalf("peak = %d, want 999", s.Peak)
	}
	if s.Last != (n-1)%1000 {
		t.Fatalf("last = %d, want %d", s.Last, (n-1)%1000)
	}
	// Retained timestamps stay monotonic.
	for i := 1; i < s.Len(); i++ {
		if s.TS[i] <= s.TS[i-1] {
			t.Fatalf("timestamps not monotonic at %d: %d then %d", i, s.TS[i-1], s.TS[i])
		}
	}
}

func TestCrashRebasesTimeline(t *testing.T) {
	tr := New()
	app := tr.RegisterTrack("app")

	tr.TxBegin(app, 100)
	tr.TxCommit(app, 150, 200, 3, 64)
	tr.TxBegin(app, 300) // interrupted by the crash below
	tr.Crash(500)        // device time of the failure; clocks restart at 0
	tr.TxBegin(app, 50)  // post-crash epoch, core-local t=50
	tr.TxCommit(app, 60, 80, 1, 32)

	evs := tr.Events()
	// The interrupted transaction must be closed at the crash point.
	var sawInterrupted, sawCrash bool
	for _, e := range evs {
		if e.Kind == EvTx && e.TS == 300 && e.Dur == 200 {
			sawInterrupted = true
		}
		if e.Kind == EvCrash && e.TS == 500 {
			sawCrash = true
		}
	}
	if !sawInterrupted {
		t.Error("crash did not close the open transaction span at the crash point")
	}
	if !sawCrash {
		t.Error("no crash marker at device time 500")
	}
	// Post-crash events are re-based: core-local 50 appears at 550.
	var sawRebased bool
	for _, e := range evs {
		if e.Kind == EvTxBegin && e.TS == 550 {
			sawRebased = true
		}
	}
	if !sawRebased {
		t.Error("post-crash event not re-based onto the monotonic timeline")
	}
	// The whole stream stays monotonically plausible: no event before 0.
	for _, e := range evs {
		if e.TS < 0 {
			t.Fatalf("negative timestamp %d", e.TS)
		}
	}
}

func TestEventLimitDropsButMetricsAggregate(t *testing.T) {
	tr := New()
	tr.limit = 8
	track := tr.RegisterTrack("app")
	for i := 0; i < 20; i++ {
		tr.Fence(track, int64(i*10), int64(i*10+5), 1)
	}
	if got := len(tr.Events()); got != 8 {
		t.Fatalf("buffered %d events, want limit 8", got)
	}
	if got := tr.Dropped(); got != 12 {
		t.Fatalf("dropped = %d, want 12", got)
	}
	m := tr.Metrics()
	if m.FenceStallNs.N != 20 {
		t.Fatalf("metrics stopped aggregating: n=%d, want 20", m.FenceStallNs.N)
	}
}

func TestMetricsSnapshotIsolation(t *testing.T) {
	tr := New()
	track := tr.RegisterTrack("app")
	tr.WPQSample(track, 10, 3)
	snap := tr.Metrics()
	tr.WPQSample(track, 20, 7)
	if snap.WPQDepth.N != 1 || snap.WPQDepth.Peak != 3 {
		t.Fatalf("snapshot mutated by later samples: n=%d peak=%d", snap.WPQDepth.N, snap.WPQDepth.Peak)
	}
}
