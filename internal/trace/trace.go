// Package trace is the observability layer of the simulator: an event
// tracer and metrics collector keyed to the simulation's virtual clock.
//
// The paper's whole argument is about where virtual time goes — persist
// barrier stalls, WPQ drains, log-append traffic, reclamation cycles
// (SpecPMT §4, Figs. 12–15) — and end-of-run aggregate counters cannot show
// it. A Tracer receives typed events from hooks in the device model
// (internal/pmem), every transaction engine (internal/txn/*,
// internal/hwsim), and the allocator (internal/pmalloc):
//
//   - transaction begin / commit / abort, with commit critical-path latency,
//     store count, and log-record size;
//   - Flush and Fence, with stall duration and WPQ depth;
//   - the drain of each cache line into the persistence domain (sequential
//     or random, and which traffic kind it carries);
//   - reclamation cycles, crash and recovery.
//
// On top of the raw event stream the Tracer maintains Metrics — fixed-bucket
// histograms (fence stall, commit latency, stores per transaction, log
// record size) and virtual-time samplers (WPQ depth, live log bytes) — and
// can export the whole run as a Chrome trace-event JSON file that opens
// directly in Perfetto or chrome://tracing, one track per simulated core.
//
// A nil *Tracer disables everything: every hook site guards with a nil
// check, so the hot path pays one predictable branch and the modeled times
// are bit-identical to an untraced run.
package trace

import (
	"fmt"
	"sync"
)

// EventKind discriminates Event payloads.
type EventKind uint8

// Event kinds. The A/B/C payload meaning is per kind; see the emitting
// method.
const (
	// EvTxBegin marks a transaction begin (instant).
	EvTxBegin EventKind = iota
	// EvTx spans a whole transaction, begin to commit end.
	// A=stores, B=log record bytes.
	EvTx
	// EvCommit spans the commit critical path. A=stores, B=log record bytes.
	EvCommit
	// EvTxAbort marks an abort (instant).
	EvTxAbort
	// EvLogAppend marks a log-record append (instant). A=bytes.
	EvLogAppend
	// EvFlush spans a CLWB issue (including any WPQ-full stall).
	// A=lines, B=traffic kind, C=WPQ depth after.
	EvFlush
	// EvFence spans an SFENCE: Dur is the persist-barrier stall.
	// A=WPQ depth at entry.
	EvFence
	// EvDrain spans one line's WPQ residency, acceptance to media
	// write-back. A=line, B=traffic kind, C=1 if sequential.
	EvDrain
	// EvReclaim spans a log reclamation cycle. A=stale entries dropped,
	// B=net live-log bytes released.
	EvReclaim
	// EvCrash marks a simulated power failure (instant, device-wide).
	EvCrash
	// EvRecover spans post-crash recovery.
	EvRecover
	// EvWPQDepth is a counter sample of a core's WPQ depth. A=depth.
	EvWPQDepth
	// EvLogLive is a counter sample of live log bytes. A=bytes.
	EvLogLive
	// EvHeapLive is a counter sample of allocator live bytes. A=bytes.
	EvHeapLive
	// EvReplShip marks a replication batch leaving the primary (instant).
	// A=records, B=bytes on the wire, C=head LSN after.
	EvReplShip
	// EvReplAck marks a replica acknowledgment arriving at the primary
	// (instant). A=acked LSN, B=lag in records (head - acked).
	EvReplAck
	// EvReplApply marks a replica applying a run of contiguous records in
	// one transaction (instant). A=records, B=operations, C=applied LSN.
	EvReplApply
)

// Event is one trace record. TS and Dur are virtual nanoseconds, already
// adjusted onto the monotonic trace timeline (crashes reset core clocks to
// zero; the tracer re-bases so the exported trace stays monotonic).
type Event struct {
	Kind    EventKind
	Track   int
	TS, Dur int64
	A, B, C int64
}

// DefaultEventLimit bounds the in-memory event buffer; one-figure trace runs
// stay far below it, and runaway runs degrade to dropped-event counting
// instead of unbounded growth. Metrics keep aggregating past the limit.
const DefaultEventLimit = 1 << 21

// Tracer collects events and aggregates Metrics. All methods are safe for
// concurrent use by multiple simulated cores. The zero value is not usable;
// call New.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	tracks  []string
	open    map[int]int64 // track -> open transaction begin TS
	base    int64         // re-basing offset across crashes
	limit   int
	dropped uint64
	m       Metrics
}

// New returns an empty Tracer with the default event limit.
func New() *Tracer {
	return &Tracer{open: map[int]int64{}, limit: DefaultEventLimit}
}

// RegisterTrack adds a named track (one per simulated core or engine) and
// returns its id, used as the thread id of the Chrome export.
func (t *Tracer) RegisterTrack(name string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tracks = append(t.tracks, name)
	return len(t.tracks) - 1
}

// NameTrack renames a registered track (engines label their cores once they
// know their role: "app", "reclaimer", "replayer").
func (t *Tracer) NameTrack(id int, name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id >= 0 && id < len(t.tracks) {
		t.tracks[id] = name
	}
}

// Tracks returns a copy of the registered track names.
func (t *Tracer) Tracks() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.tracks...)
}

// Events returns a copy of the buffered events.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Dropped reports how many events were discarded after the buffer limit.
func (t *Tracer) Dropped() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Metrics returns a snapshot of the aggregated metrics.
func (t *Tracer) Metrics() Metrics {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.m.snapshot()
}

// emitLocked appends an event; the caller holds t.mu and has already
// re-based timestamps.
func (t *Tracer) emitLocked(e Event) {
	if len(t.events) >= t.limit {
		t.dropped++
		return
	}
	t.events = append(t.events, e)
}

// TxBegin records a transaction begin at core-local time now.
func (t *Tracer) TxBegin(track int, now int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now += t.base
	t.open[track] = now
	t.emitLocked(Event{Kind: EvTxBegin, Track: track, TS: now})
}

// TxCommit records a commit whose critical path ran from commitStart to now
// (core-local times), with the transaction's store count and encoded log
// record size (0 when the engine wrote no record). It closes the matching
// TxBegin into a whole-transaction span and feeds the commit-latency,
// store-count, and record-size histograms.
func (t *Tracer) TxCommit(track int, commitStart, now int64, stores, logBytes int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	commitStart += t.base
	now += t.base
	if begin, ok := t.open[track]; ok {
		delete(t.open, track)
		t.emitLocked(Event{Kind: EvTx, Track: track, TS: begin, Dur: now - begin,
			A: int64(stores), B: int64(logBytes)})
	}
	t.emitLocked(Event{Kind: EvCommit, Track: track, TS: commitStart, Dur: now - commitStart,
		A: int64(stores), B: int64(logBytes)})
	t.m.CommitNs.Observe(now - commitStart)
	t.m.TxStores.Observe(int64(stores))
	if logBytes > 0 {
		t.m.LogRecBytes.Observe(int64(logBytes))
	}
}

// TxAbort records a transaction abort at core-local time now.
func (t *Tracer) TxAbort(track int, now int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now += t.base
	if begin, ok := t.open[track]; ok {
		delete(t.open, track)
		t.emitLocked(Event{Kind: EvTx, Track: track, TS: begin, Dur: now - begin})
	}
	t.emitLocked(Event{Kind: EvTxAbort, Track: track, TS: now})
}

// LogAppend records a log-record append of the given encoded size, plus a
// live-log counter sample, and feeds the record-size histogram.
func (t *Tracer) LogAppend(track int, now int64, bytes int, liveBytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now += t.base
	t.emitLocked(Event{Kind: EvLogAppend, Track: track, TS: now, A: int64(bytes)})
	t.emitLocked(Event{Kind: EvLogLive, Track: track, TS: now, A: liveBytes})
	t.m.LogBytesLive.Add(now, liveBytes)
}

// LiveLog records a live-log gauge change outside an append (commit-time
// invalidation, reclamation).
func (t *Tracer) LiveLog(track int, now int64, liveBytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now += t.base
	t.emitLocked(Event{Kind: EvLogLive, Track: track, TS: now, A: liveBytes})
	t.m.LogBytesLive.Add(now, liveBytes)
}

// Flush records a CLWB issue spanning [start, end) core-local time covering
// lines cache lines of the given traffic kind, with the issuing core's WPQ
// depth after the enqueue.
func (t *Tracer) Flush(track int, start, end int64, lines int, kind uint8, depth int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(Event{Kind: EvFlush, Track: track, TS: start + t.base, Dur: end - start,
		A: int64(lines), B: int64(kind), C: int64(depth)})
}

// Fence records an SFENCE spanning [start, end) core-local time — the
// persist-barrier stall the paper's Figure 2 is about — with the WPQ depth
// the barrier had to wait out. Feeds the fence-stall histogram.
func (t *Tracer) Fence(track int, start, end int64, depth int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(Event{Kind: EvFence, Track: track, TS: start + t.base, Dur: end - start,
		A: int64(depth)})
	t.m.FenceStallNs.Observe(end - start)
}

// Drain records one line's journey through the WPQ: accepted into the ADR
// domain at acceptAt, written back to media at drainAt (core-local times).
func (t *Tracer) Drain(track int, acceptAt, drainAt int64, line uint64, seq bool, kind uint8) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var s int64
	if seq {
		s = 1
	}
	t.emitLocked(Event{Kind: EvDrain, Track: track, TS: acceptAt + t.base, Dur: drainAt - acceptAt,
		A: int64(line), B: int64(kind), C: s})
}

// WPQSample records a counter sample of a core's WPQ depth and feeds the
// depth sampler.
func (t *Tracer) WPQSample(track int, now int64, depth int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now += t.base
	t.emitLocked(Event{Kind: EvWPQDepth, Track: track, TS: now, A: int64(depth)})
	t.m.WPQDepth.Add(now, int64(depth))
}

// HeapSample records a counter sample of allocator live bytes.
func (t *Tracer) HeapSample(track int, now int64, live int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(Event{Kind: EvHeapLive, Track: track, TS: now + t.base, A: live})
}

// Reclaim records a reclamation cycle spanning [start, end) core-local time
// that dropped entries stale entries and released bytes net live-log bytes.
func (t *Tracer) Reclaim(track int, start, end int64, entries uint64, bytes int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(Event{Kind: EvReclaim, Track: track, TS: start + t.base, Dur: end - start,
		A: int64(entries), B: bytes})
}

// RecoverSpan records a post-crash recovery spanning [start, end) core-local
// time.
func (t *Tracer) RecoverSpan(track int, start, end int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(Event{Kind: EvRecover, Track: track, TS: start + t.base, Dur: end - start})
}

// Crash records a simulated power failure at device time maxNow — the
// latest core clock at the moment of failure — and re-bases the trace
// timeline so that the post-crash epoch (core clocks restart at zero)
// continues monotonically. Open transactions are closed as crash-interrupted
// spans.
func (t *Tracer) Crash(maxNow int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	at := maxNow + t.base
	for track, begin := range t.open {
		t.emitLocked(Event{Kind: EvTx, Track: track, TS: begin, Dur: at - begin})
		t.emitLocked(Event{Kind: EvTxAbort, Track: track, TS: at})
		delete(t.open, track)
	}
	t.emitLocked(Event{Kind: EvCrash, Track: 0, TS: at})
	t.base = at
}

// ReplShip records a replication batch of records (bytes on the wire)
// leaving the primary at virtual time now, with headLSN the log head after
// the batch.
func (t *Tracer) ReplShip(track int, now int64, records, bytes int, headLSN uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m.ReplShipRecords.Observe(int64(records))
	t.emitLocked(Event{Kind: EvReplShip, Track: track, TS: now + t.base,
		A: int64(records), B: int64(bytes), C: int64(headLSN)})
}

// ReplAck records a replica acknowledgment at the primary: the acked LSN
// and the replica's lag in records at that moment.
func (t *Tracer) ReplAck(track int, now int64, ackedLSN uint64, lagRecords int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m.ReplLagRecords.Observe(lagRecords)
	t.emitLocked(Event{Kind: EvReplAck, Track: track, TS: now + t.base,
		A: int64(ackedLSN), B: lagRecords})
}

// ReplApply records a replica applying records contiguous records (ops
// operations total) in one transaction, ending at appliedLSN.
func (t *Tracer) ReplApply(track int, now int64, records, ops int, appliedLSN uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m.ReplApplyRecords.Observe(int64(records))
	t.emitLocked(Event{Kind: EvReplApply, Track: track, TS: now + t.base,
		A: int64(records), B: int64(ops), C: int64(appliedLSN)})
}

// kindName renders a pmem traffic kind without importing pmem (the device
// model imports this package).
func kindName(k int64) string {
	switch k {
	case 1:
		return "log"
	case 2:
		return "gc"
	default:
		return "data"
	}
}

// Summary renders the aggregated metrics as a compact report.
func (t *Tracer) Summary() string {
	m := t.Metrics()
	s := m.Summary()
	if d := t.Dropped(); d > 0 {
		s += fmt.Sprintf("(%d events dropped after buffer limit; metrics kept aggregating)\n", d)
	}
	return s
}
