package trace

import (
	"fmt"
	"strings"
)

// HistBuckets is the number of power-of-two histogram buckets. Bucket 0
// holds values <= 0; bucket i (i >= 1) holds values in [2^(i-1), 2^i). The
// last bucket absorbs everything at or above 2^(HistBuckets-2), covering the
// full int64 range the virtual clock can express.
const HistBuckets = 44

// Histogram is a fixed-bucket power-of-two histogram of int64 observations.
// The zero value is ready to use.
type Histogram struct {
	Counts   [HistBuckets]uint64
	N        uint64
	Sum      int64
	Min, Max int64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := 1
	for v > 1 && b < HistBuckets-1 {
		v >>= 1
		b++
	}
	return b
}

// BucketBounds returns bucket i's half-open value range [lo, hi).
func BucketBounds(i int) (lo, hi int64) {
	if i <= 0 {
		return 0, 1
	}
	lo = int64(1) << (i - 1)
	if i >= HistBuckets-1 {
		return lo, int64(1)<<62 + (int64(1)<<62 - 1) // effectively MaxInt64
	}
	return lo, int64(1) << i
}

// Observe adds one observation.
func (h *Histogram) Observe(v int64) {
	h.Counts[bucketOf(v)]++
	if h.N == 0 || v < h.Min {
		h.Min = v
	}
	if h.N == 0 || v > h.Max {
		h.Max = v
	}
	h.N++
	h.Sum += v
}

// Mean returns the arithmetic mean of the observations (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.N)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1) using the
// geometric midpoint of the bucket holding the target rank; exact Min/Max
// are returned for q at the extremes.
func (h *Histogram) Quantile(q float64) int64 {
	if h.N == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := uint64(q * float64(h.N))
	if rank >= h.N {
		rank = h.N - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			lo, hi := BucketBounds(i)
			// Clamp the estimate to the observed range so single-bucket
			// histograms report sensible numbers.
			mid := lo + (hi-lo)/2
			if mid < h.Min {
				mid = h.Min
			}
			if mid > h.Max {
				mid = h.Max
			}
			return mid
		}
	}
	return h.Max
}

// row renders one summary line.
func (h *Histogram) row(name, unit string) string {
	if h.N == 0 {
		return fmt.Sprintf("  %-16s (no samples)\n", name)
	}
	return fmt.Sprintf("  %-16s n=%-8d min=%-8d p50=%-8d p90=%-8d p99=%-8d max=%-8d mean=%.1f %s\n",
		name, h.N, h.Min, h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Max, h.Mean(), unit)
}

// SamplerCap bounds a Sampler's stored points; beyond it the sampler halves
// its resolution (keeps every 2nd point, doubles its stride) so long runs
// stay bounded while preserving the shape of the series.
const SamplerCap = 1 << 15

// Sampler records an (virtual time, value) series with adaptive decimation
// plus exact peak and last-value tracking. The zero value is ready to use.
type Sampler struct {
	TS     []int64
	V      []int64
	Peak   int64
	Last   int64
	N      uint64 // total offered samples, pre-decimation
	stride uint64
}

// Add offers one sample.
func (s *Sampler) Add(t, v int64) {
	if v > s.Peak {
		s.Peak = v
	}
	s.Last = v
	if s.stride == 0 {
		s.stride = 1
	}
	if s.N%s.stride == 0 {
		if len(s.TS) >= SamplerCap {
			// Halve resolution in place.
			keep := 0
			for i := 0; i < len(s.TS); i += 2 {
				s.TS[keep], s.V[keep] = s.TS[i], s.V[i]
				keep++
			}
			s.TS, s.V = s.TS[:keep], s.V[:keep]
			s.stride *= 2
		}
		if s.N%s.stride == 0 {
			s.TS = append(s.TS, t)
			s.V = append(s.V, v)
		}
	}
	s.N++
}

// Len returns the number of retained points.
func (s *Sampler) Len() int { return len(s.TS) }

func (s *Sampler) snapshot() Sampler {
	c := *s
	c.TS = append([]int64(nil), s.TS...)
	c.V = append([]int64(nil), s.V...)
	return c
}

// Metrics aggregates the distributions the paper's cost model cares about.
type Metrics struct {
	// FenceStallNs is the distribution of persist-barrier stalls (SFENCE
	// entry to completion) — the per-update cost undo logging pays and
	// SpecPMT's single commit fence amortises.
	FenceStallNs Histogram
	// CommitNs is the distribution of commit critical-path latencies.
	CommitNs Histogram
	// TxStores is the distribution of transactional store counts per commit.
	TxStores Histogram
	// LogRecBytes is the distribution of encoded log-record sizes.
	LogRecBytes Histogram
	// WPQDepth samples write-pending-queue depth over virtual time.
	WPQDepth Sampler
	// LogBytesLive samples the live-log gauge over virtual time.
	LogBytesLive Sampler
	// ReplShipRecords is the distribution of records per replication batch
	// shipped by a primary — how well the network hop amortizes.
	ReplShipRecords Histogram
	// ReplLagRecords is the distribution of replica lag (records behind the
	// primary's log head) observed at each acknowledgment.
	ReplLagRecords Histogram
	// ReplApplyRecords is the distribution of contiguous records a replica
	// replays in one transaction — the replica-side group commit.
	ReplApplyRecords Histogram
}

func (m *Metrics) snapshot() Metrics {
	c := *m
	c.WPQDepth = m.WPQDepth.snapshot()
	c.LogBytesLive = m.LogBytesLive.snapshot()
	return c
}

// Summary renders the metrics as a compact multi-line report.
func (m *Metrics) Summary() string {
	var b strings.Builder
	b.WriteString("trace metrics (virtual ns):\n")
	b.WriteString(m.FenceStallNs.row("fence-stall", "ns"))
	b.WriteString(m.CommitNs.row("commit-latency", "ns"))
	b.WriteString(m.TxStores.row("tx-stores", "stores"))
	b.WriteString(m.LogRecBytes.row("log-record", "B"))
	fmt.Fprintf(&b, "  %-16s peak=%d last=%d samples=%d\n", "wpq-depth", m.WPQDepth.Peak, m.WPQDepth.Last, m.WPQDepth.N)
	fmt.Fprintf(&b, "  %-16s peak=%dB last=%dB samples=%d\n", "log-live", m.LogBytesLive.Peak, m.LogBytesLive.Last, m.LogBytesLive.N)
	if m.ReplShipRecords.N > 0 {
		b.WriteString(m.ReplShipRecords.row("repl-ship", "records"))
	}
	if m.ReplLagRecords.N > 0 {
		b.WriteString(m.ReplLagRecords.row("repl-lag", "records"))
	}
	if m.ReplApplyRecords.N > 0 {
		b.WriteString(m.ReplApplyRecords.row("repl-apply", "records"))
	}
	return b.String()
}
