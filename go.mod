module specpmt

go 1.22
