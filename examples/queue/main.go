// Queue: a persistent bounded FIFO queue. Producers enqueue and consumers
// dequeue in crash-atomic transactions; after every simulated power failure
// the recovered queue is audited: the sequence numbers consumed so far plus
// the ones still queued must form exactly the committed prefix — nothing
// lost, nothing duplicated, nothing half-enqueued.
package main

import (
	"fmt"
	"log"

	"specpmt"
	"specpmt/internal/sim"
)

// Layout: [cap u64][head u64][tail u64][slots: cap * u64]
// head/tail are monotone counters; slot index is counter % cap.
type Queue struct {
	pool *specpmt.Pool
	base specpmt.Addr
	cap  uint64
}

// NewQueue allocates a queue and registers it in root slot 1.
func NewQueue(pool *specpmt.Pool, capacity uint64) (*Queue, error) {
	base, err := pool.Alloc(int(24 + capacity*8))
	if err != nil {
		return nil, err
	}
	tx := pool.Begin()
	tx.StoreUint64(base, capacity)
	tx.StoreUint64(base+8, 0)  // head
	tx.StoreUint64(base+16, 0) // tail
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	if err := pool.SetRoot(1, uint64(base)); err != nil {
		return nil, err
	}
	return &Queue{pool: pool, base: base, cap: capacity}, nil
}

// OpenQueue reattaches after a crash.
func OpenQueue(pool *specpmt.Pool) *Queue {
	base := specpmt.Addr(pool.Root(1))
	return &Queue{pool: pool, base: base, cap: pool.ReadUint64(base)}
}

// Enqueue appends v crash-atomically; false if full.
func (q *Queue) Enqueue(v uint64) (bool, error) {
	tx := q.pool.Begin()
	head, tail := tx.LoadUint64(q.base+8), tx.LoadUint64(q.base+16)
	if tail-head == q.cap {
		return false, tx.Abort()
	}
	tx.StoreUint64(q.base+24+specpmt.Addr((tail%q.cap)*8), v)
	tx.StoreUint64(q.base+16, tail+1)
	return true, tx.Commit()
}

// Dequeue removes the oldest element crash-atomically; ok=false if empty.
func (q *Queue) Dequeue() (v uint64, ok bool, err error) {
	tx := q.pool.Begin()
	head, tail := tx.LoadUint64(q.base+8), tx.LoadUint64(q.base+16)
	if head == tail {
		return 0, false, tx.Abort()
	}
	v = tx.LoadUint64(q.base + 24 + specpmt.Addr((head%q.cap)*8))
	tx.StoreUint64(q.base+8, head+1)
	return v, true, tx.Commit()
}

// Snapshot reads the committed contents outside any transaction.
func (q *Queue) Snapshot() []uint64 {
	head, tail := q.pool.ReadUint64(q.base+8), q.pool.ReadUint64(q.base+16)
	var out []uint64
	for i := head; i < tail; i++ {
		out = append(out, q.pool.ReadUint64(q.base+24+specpmt.Addr((i%q.cap)*8)))
	}
	return out
}

func main() {
	pool, err := specpmt.Open(specpmt.Config{Size: 128 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	q, err := NewQueue(pool, 64)
	if err != nil {
		log.Fatal(err)
	}
	rng := sim.NewRand(5)

	next := uint64(1) // producer sequence number
	var consumed []uint64
	produced := uint64(0)

	for round := 0; round < 6; round++ {
		ops := rng.Intn(80) + 20
		for i := 0; i < ops; i++ {
			if rng.Float64() < 0.6 {
				ok, err := q.Enqueue(next)
				if err != nil {
					log.Fatal(err)
				}
				if ok {
					produced = next
					next++
				}
			} else {
				v, ok, err := q.Dequeue()
				if err != nil {
					log.Fatal(err)
				}
				if ok {
					consumed = append(consumed, v)
				}
			}
		}
		if err := pool.Crash(rng.Uint64()); err != nil {
			log.Fatal(err)
		}
		if err := pool.Recover(); err != nil {
			log.Fatal(err)
		}
		q = OpenQueue(pool)
		// Audit: consumed ++ queued must be exactly 1..produced in order.
		remaining := q.Snapshot()
		seq := append(append([]uint64{}, consumed...), remaining...)
		for i, v := range seq {
			if v != uint64(i+1) {
				log.Fatalf("round %d: position %d holds %d, want %d — FIFO history corrupted",
					round, i, v, i+1)
			}
		}
		if uint64(len(seq)) != produced {
			log.Fatalf("round %d: %d elements accounted for, %d produced", round, len(seq), produced)
		}
		fmt.Printf("round %d: %3d produced, %3d consumed, %2d queued — history intact after crash\n",
			round, produced, len(consumed), len(remaining))
	}
	fmt.Printf("modeled time: %.2fms\n", float64(pool.ModeledTime())/1e6)
}
