// Index: builds a persistent B+tree (pds/btree) under several engines and
// compares the modeled cost. A split chain touches many nodes; SpecPMT
// commits it with a single fence while undo logging pays a persist barrier
// per logged region — the gap the paper's Figure 12 measures, shown here on
// a real data structure instead of a synthetic op stream. Finishes with a
// crash drill on the SpecSPMT tree.
package main

import (
	"fmt"
	"log"

	"specpmt"
	"specpmt/internal/sim"
	"specpmt/pds/btree"
)

const keys = 3000

func main() {
	type result struct {
		engine string
		ns     int64
		fences uint64
	}
	var results []result
	for _, engine := range []string{"PMDK", "Kamino-Tx", "SPHT", "SpecSPMT-DP", "SpecSPMT"} {
		pool, err := specpmt.Open(specpmt.Config{Size: 256 << 20, Engine: engine, Optane: true})
		if err != nil {
			log.Fatal(err)
		}
		tr, err := btree.New(pool, 0)
		if err != nil {
			log.Fatal(err)
		}
		rng := sim.NewRand(1)
		for i := 0; i < keys; i++ {
			if err := tr.Insert(rng.Uint64()%100000, uint64(i)); err != nil {
				log.Fatal(err)
			}
		}
		if err := tr.Validate(); err != nil {
			log.Fatalf("%s: %v", engine, err)
		}
		results = append(results, result{engine, pool.ModeledTime(), 0})
		pool.Close()
	}
	base := results[0].ns
	fmt.Printf("building a %d-key persistent B+tree (modeled, Optane platform):\n", keys)
	for _, r := range results {
		fmt.Printf("  %-12s %8.2fms  (%.2fx vs PMDK)\n",
			r.engine, float64(r.ns)/1e6, float64(base)/float64(r.ns))
	}

	// Crash drill: interrupt a batch of inserts, verify structure.
	pool, err := specpmt.Open(specpmt.Config{Size: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	tr, err := btree.New(pool, 0)
	if err != nil {
		log.Fatal(err)
	}
	rng := sim.NewRand(2)
	committed := map[uint64]uint64{}
	for i := 0; i < 1500; i++ {
		k, v := rng.Uint64()%50000, rng.Uint64()
		if err := tr.Insert(k, v); err != nil {
			log.Fatal(err)
		}
		committed[k] = v
	}
	if err := pool.Crash(7); err != nil {
		log.Fatal(err)
	}
	if err := pool.Recover(); err != nil {
		log.Fatal(err)
	}
	tr, err = btree.Open(pool, 0)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		log.Fatalf("post-crash validation: %v", err)
	}
	bad := 0
	for k, v := range committed {
		if got, ok := tr.Get(k); !ok || got != v {
			bad++
		}
	}
	fmt.Printf("crash drill: %d keys, structure valid, %d mismatches after recovery\n",
		len(committed), bad)
	if bad > 0 {
		log.Fatal("index: atomicity violated")
	}
}
