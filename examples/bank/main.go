// Bank: the canonical crash-atomicity workload. Random transfers move money
// between accounts inside transactions; power failures strike mid-run; after
// every recovery the total balance must be exactly what it started as —
// a transfer either fully happened or never happened.
//
// The same scenario runs under every crash-consistent engine, printing the
// modeled execution time of each, so the demo doubles as a miniature of the
// paper's Figure 12/13 comparison.
package main

import (
	"fmt"
	"log"

	"specpmt"
	"specpmt/internal/sim"
)

const (
	accounts = 64
	initial  = 1000
	rounds   = 4
	transfer = 150 // transfers per round
)

func main() {
	for _, engine := range []string{"PMDK", "Kamino-Tx", "SPHT", "SpecSPMT-DP", "SpecSPMT", "EDE", "SpecHPMT"} {
		if err := run(engine); err != nil {
			log.Fatalf("%s: %v", engine, err)
		}
	}
}

func run(engine string) error {
	pool, err := specpmt.Open(specpmt.Config{Engine: engine, Size: 128 << 20})
	if err != nil {
		return err
	}
	defer pool.Close()
	rng := sim.NewRand(7)

	// Persistent account table, funded in one transaction.
	table, err := pool.Alloc(accounts * 8)
	if err != nil {
		return err
	}
	tx := pool.Begin()
	for i := 0; i < accounts; i++ {
		tx.StoreUint64(table+specpmt.Addr(i*8), initial)
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	if err := pool.SetRoot(0, uint64(table)); err != nil {
		return err
	}

	crashes, midTx := 0, 0
	for round := 0; round < rounds; round++ {
		for i := 0; i < transfer; i++ {
			from := rng.Intn(accounts)
			to := rng.Intn(accounts)
			amount := uint64(rng.Intn(50) + 1)
			tx := pool.Begin()
			fa := table + specpmt.Addr(from*8)
			ta := table + specpmt.Addr(to*8)
			fb := tx.LoadUint64(fa)
			tb := tx.LoadUint64(ta)
			if fb < amount {
				if err := tx.Abort(); err != nil {
					return err
				}
				continue
			}
			tx.StoreUint64(fa, fb-amount)
			if from != to {
				tx.StoreUint64(ta, tb+amount)
			} else {
				tx.StoreUint64(ta, tb) // self-transfer: balance unchanged
			}
			if i == transfer-1 && rng.Float64() < 0.5 {
				midTx++ // crash with this transfer in flight
				break
			}
			if err := tx.Commit(); err != nil {
				return err
			}
		}
		if err := pool.Crash(rng.Uint64()); err != nil {
			return err
		}
		crashes++
		if err := pool.Recover(); err != nil {
			return err
		}
		// The invariant: money is conserved across every crash.
		table = specpmt.Addr(pool.Root(0))
		total := uint64(0)
		for i := 0; i < accounts; i++ {
			total += pool.ReadUint64(table + specpmt.Addr(i*8))
		}
		if total != accounts*initial {
			return fmt.Errorf("round %d: total balance %d, want %d — atomicity violated",
				round, total, accounts*initial)
		}
	}
	fmt.Printf("%-12s %d transfers, %d crashes (%d mid-transfer): money conserved; modeled time %.2fms\n",
		engine, rounds*transfer, crashes, midTx, float64(pool.ModeledTime())/1e6)
	return nil
}
