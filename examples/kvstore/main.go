// KVStore: a persistent fixed-capacity hash map built on the public API —
// the "persistent data structure on transactions" usage the paper's
// programming model (§4.3) targets. Every mutation is one crash-atomic
// transaction; the store is rediscovered from a pool root slot after a
// crash. The demo loads a dataset, overwrites part of it, crashes in the
// middle of a multi-key update, and verifies the map recovered to exactly
// the committed state.
package main

import (
	"fmt"
	"log"

	"specpmt"
	"specpmt/internal/sim"
)

// Store layout in persistent memory:
//
//	header: [capacity u64][len u64]
//	slots:  capacity * [state u64][key u64][value u64]  (state: 0 empty, 1 used)
//
// Open addressing with linear probing. Capacity is fixed at creation — a
// resize would simply be another transaction copying into a new table.
type Store struct {
	pool *specpmt.Pool
	base specpmt.Addr
	cap  uint64
}

const (
	hdrSize  = 16
	slotSize = 24
)

// NewStore allocates a store of the given capacity and registers it in pool
// root slot 0.
func NewStore(pool *specpmt.Pool, capacity uint64) (*Store, error) {
	base, err := pool.Alloc(int(hdrSize + capacity*slotSize))
	if err != nil {
		return nil, err
	}
	// Initialise in chunks (each transaction's log record must fit one log
	// block). The table is unreachable until the root slot is published, so
	// a crash mid-initialisation leaks nothing.
	tx := pool.Begin()
	tx.StoreUint64(base, capacity)
	tx.StoreUint64(base+8, 0)
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	const chunk = 512
	for i := uint64(0); i < capacity; i += chunk {
		tx := pool.Begin()
		for j := i; j < i+chunk && j < capacity; j++ {
			tx.StoreUint64(base+hdrSize+specpmt.Addr(j*slotSize), 0)
		}
		if err := tx.Commit(); err != nil {
			return nil, err
		}
	}
	if err := pool.SetRoot(0, uint64(base)); err != nil {
		return nil, err
	}
	return &Store{pool: pool, base: base, cap: capacity}, nil
}

// OpenStore reattaches to the store registered in root slot 0 (post-crash).
func OpenStore(pool *specpmt.Pool) *Store {
	base := specpmt.Addr(pool.Root(0))
	return &Store{pool: pool, base: base, cap: pool.ReadUint64(base)}
}

func (s *Store) slot(i uint64) specpmt.Addr {
	return s.base + hdrSize + specpmt.Addr((i%s.cap)*slotSize)
}

func hash(k uint64) uint64 { return k * 0x9e3779b97f4a7c15 }

// put inserts or updates a key inside an open transaction, returning false
// if the table is full.
func (s *Store) put(tx specpmt.Tx, key, val uint64) bool {
	for probe := uint64(0); probe < s.cap; probe++ {
		at := s.slot(hash(key) + probe)
		switch tx.LoadUint64(at) {
		case 0: // empty
			tx.StoreUint64(at, 1)
			tx.StoreUint64(at+8, key)
			tx.StoreUint64(at+16, val)
			tx.StoreUint64(s.base+8, tx.LoadUint64(s.base+8)+1)
			return true
		case 1:
			if tx.LoadUint64(at+8) == key {
				tx.StoreUint64(at+16, val)
				return true
			}
		}
	}
	return false
}

// Put writes one key crash-atomically.
func (s *Store) Put(key, val uint64) error {
	tx := s.pool.Begin()
	if !s.put(tx, key, val) {
		tx.Abort()
		return fmt.Errorf("kvstore: table full")
	}
	return tx.Commit()
}

// PutAll writes a batch of keys in ONE transaction: after a crash, either
// every key in the batch has its new value or none does.
func (s *Store) PutAll(kvs map[uint64]uint64) error {
	tx := s.pool.Begin()
	for k, v := range kvs {
		if !s.put(tx, k, v) {
			tx.Abort()
			return fmt.Errorf("kvstore: table full")
		}
	}
	return tx.Commit()
}

// Get reads a key outside any transaction.
func (s *Store) Get(key uint64) (uint64, bool) {
	for probe := uint64(0); probe < s.cap; probe++ {
		at := s.slot(hash(key) + probe)
		switch s.pool.ReadUint64(at) {
		case 0:
			return 0, false
		case 1:
			if s.pool.ReadUint64(at+8) == key {
				return s.pool.ReadUint64(at + 16), true
			}
		}
	}
	return 0, false
}

// Len returns the committed entry count.
func (s *Store) Len() uint64 { return s.pool.ReadUint64(s.base + 8) }

func main() {
	pool, err := specpmt.Open(specpmt.Config{Size: 128 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	store, err := NewStore(pool, 4096)
	if err != nil {
		log.Fatal(err)
	}
	rng := sim.NewRand(3)

	// Load a dataset.
	oracle := map[uint64]uint64{}
	for i := 0; i < 1000; i++ {
		k, v := rng.Uint64()%100000, rng.Uint64()
		if err := store.Put(k, v); err != nil {
			log.Fatal(err)
		}
		oracle[k] = v
	}
	// One committed batch update.
	batch := map[uint64]uint64{11: 1, 22: 2, 33: 3, 44: 4}
	if err := store.PutAll(batch); err != nil {
		log.Fatal(err)
	}
	for k, v := range batch {
		oracle[k] = v
	}
	fmt.Printf("loaded %d keys (%d committed entries)\n", len(oracle), store.Len())

	// A second batch is interrupted by a power failure: it must vanish
	// entirely.
	tx := pool.Begin()
	store.put(tx, 11, 999)
	store.put(tx, 22, 999)
	fmt.Println("crash mid-batch...")
	if err := pool.Crash(9); err != nil {
		log.Fatal(err)
	}
	if err := pool.Recover(); err != nil {
		log.Fatal(err)
	}

	store = OpenStore(pool)
	bad := 0
	for k, want := range oracle {
		got, ok := store.Get(k)
		if !ok || got != want {
			bad++
		}
	}
	fmt.Printf("verified %d keys after recovery: %d mismatches\n", len(oracle), bad)
	if bad > 0 {
		log.Fatal("kvstore: atomicity violated")
	}
	fmt.Printf("interrupted batch revoked: key 11 = %v (want %d)\n",
		first(store.Get(11)), oracle[11])
	fmt.Printf("modeled time: %.2fms\n", float64(pool.ModeledTime())/1e6)
}

func first(v uint64, _ bool) uint64 { return v }
