// KVStore over the wire: the persistent hash map served by internal/server,
// driven through the real TCP path. The demo starts an in-process
// specpmt-server on a loopback port, dials it with the client codec, and
// runs a mixed workload: single SET/GET/DEL/CAS requests, a multi-key
// MULTI...EXEC transaction (atomic even across shards), a CAS race between
// two connections, and a STATS read showing the group-commit batcher
// amortizing commit fences across clients.
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"specpmt/internal/server"
)

func main() {
	// An in-process server: 4 shard workers, each owning one SpecSPMT
	// engine thread, group-committing requests that arrive together.
	srv, err := server.New(server.Config{
		Engine:   "SpecSPMT",
		Shards:   4,
		PoolSize: 64 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()

	c, err := server.Dial(addr, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("connected:", c.Banner)

	// Single-key requests. Every reply carries t=<ns>, the request's
	// modeled PM time on the simulated device.
	if _, err := c.Set(1, 100); err != nil {
		log.Fatal(err)
	}
	r, err := c.Get(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET 1 -> %d (modeled %dns)\n", r.Val, r.ModelNs)

	// A multi-key transaction: the three SETs commit atomically in ONE
	// engine transaction even though keys 2, 3, 4 hash to different shards.
	results, modelNs, err := c.Exec([]server.Op{
		{Kind: server.OpSet, Key: 2, Arg1: 200},
		{Kind: server.OpSet, Key: 3, Arg1: 300},
		{Kind: server.OpSet, Key: 4, Arg1: 400},
		{Kind: server.OpGet, Key: 2}, // observes the SET in the same txn
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("EXEC: %d ops committed atomically (modeled %dns), GET 2 -> %d\n",
		len(results), modelNs, results[3].Val)

	// Two clients race a CAS increment on key 1: exactly one wins per
	// round, so the final value counts the successes.
	var wins [2]int
	var wg sync.WaitGroup
	for id := 0; id < 2; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			cc, err := server.Dial(addr, 5*time.Second)
			if err != nil {
				log.Fatal(err)
			}
			defer cc.Close()
			for wins[id] < 50 {
				g, err := cc.Get(1)
				if err != nil {
					log.Fatal(err)
				}
				r, err := cc.CAS(1, g.Val, g.Val+1)
				if err != nil {
					log.Fatal(err)
				}
				if r.Status == server.StatusOK {
					wins[id]++
				}
			}
		}()
	}
	wg.Wait()
	final, _ := c.Get(1)
	fmt.Printf("CAS race: %d + %d wins, value %d -> %d (linearizable: %v)\n",
		wins[0], wins[1], 100, final.Val, final.Val == 100+uint64(wins[0]+wins[1]))

	// DEL, and a miss.
	if r, _ := c.Del(4); r.Status != server.StatusOK {
		log.Fatal("DEL 4 failed")
	}
	if r, _ := c.Get(4); r.Status != server.StatusNotFound {
		log.Fatal("GET 4 should miss after DEL")
	}
	fmt.Println("DEL 4: ok, subsequent GET misses")

	// The server's own counters: fences per committed transaction stays
	// near one (the paper's single-fence commit), and group commit packs
	// multiple SETs into one transaction when clients overlap.
	nums, strs, err := c.Stats()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("STATS: engine=%s keys=%d txns=%d fences=%d batched_ops=%d batches=%d\n",
		strs["engine"], nums["keys"], nums["tx_committed"], nums["fences"],
		nums["batched_ops"], nums["batches"])

	c.Close()
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("server drained cleanly")
}
