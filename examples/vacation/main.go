// Vacation: a miniature of STAMP's travel reservation system — the kind of
// workload the paper's evaluation runs (§7.1.1). Three resource tables
// (flights, rooms, cars) and a reservation ledger live in persistent
// memory; booking a trip reserves one unit from each table AND appends a
// ledger entry in a single transaction. Power failures strike throughout;
// after each recovery two invariants are audited:
//
//  1. conservation: for every resource, initial capacity = free + reserved
//     units accounted by the ledger;
//  2. atomicity: every ledger entry's trip is complete (a flight, a room,
//     and a car) — no half-booked trips survive a crash.
package main

import (
	"fmt"
	"log"

	"specpmt"
	"specpmt/internal/sim"
)

const (
	resources  = 16  // rows per table
	capacity   = 20  // units per row
	maxLedger  = 512 // ledger slots
	numRounds  = 5
	tripsRound = 60
)

// Table layout: resources * [free u64].
// Ledger layout: [count u64] + maxLedger * [flight u64][room u64][car u64]
// (row indices +1; 0 means empty).
type system struct {
	pool    *specpmt.Pool
	flights specpmt.Addr
	rooms   specpmt.Addr
	cars    specpmt.Addr
	ledger  specpmt.Addr
}

func newSystem(pool *specpmt.Pool) (*system, error) {
	s := &system{pool: pool}
	var err error
	alloc := func(n int) specpmt.Addr {
		var a specpmt.Addr
		if err == nil {
			a, err = pool.Alloc(n)
		}
		return a
	}
	s.flights = alloc(resources * 8)
	s.rooms = alloc(resources * 8)
	s.cars = alloc(resources * 8)
	s.ledger = alloc(8 + maxLedger*24)
	if err != nil {
		return nil, err
	}
	tx := pool.Begin()
	for _, t := range []specpmt.Addr{s.flights, s.rooms, s.cars} {
		for i := 0; i < resources; i++ {
			tx.StoreUint64(t+specpmt.Addr(i*8), capacity)
		}
	}
	tx.StoreUint64(s.ledger, 0)
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	for i, a := range []specpmt.Addr{s.flights, s.rooms, s.cars, s.ledger} {
		if err := pool.SetRoot(i, uint64(a)); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func reattach(pool *specpmt.Pool) *system {
	return &system{
		pool:    pool,
		flights: specpmt.Addr(pool.Root(0)),
		rooms:   specpmt.Addr(pool.Root(1)),
		cars:    specpmt.Addr(pool.Root(2)),
		ledger:  specpmt.Addr(pool.Root(3)),
	}
}

// bookTrip reserves one flight, room, and car row atomically. Returns false
// (aborting) when any leg is sold out or the ledger is full.
func (s *system) bookTrip(f, r, c int) (bool, error) {
	tx := s.pool.Begin()
	fa := s.flights + specpmt.Addr(f*8)
	ra := s.rooms + specpmt.Addr(r*8)
	ca := s.cars + specpmt.Addr(c*8)
	ff, rf, cf := tx.LoadUint64(fa), tx.LoadUint64(ra), tx.LoadUint64(ca)
	n := tx.LoadUint64(s.ledger)
	if ff == 0 || rf == 0 || cf == 0 || n >= maxLedger {
		return false, tx.Abort()
	}
	tx.StoreUint64(fa, ff-1)
	tx.StoreUint64(ra, rf-1)
	tx.StoreUint64(ca, cf-1)
	ent := s.ledger + 8 + specpmt.Addr(n*24)
	tx.StoreUint64(ent, uint64(f+1))
	tx.StoreUint64(ent+8, uint64(r+1))
	tx.StoreUint64(ent+16, uint64(c+1))
	tx.StoreUint64(s.ledger, n+1)
	return true, tx.Commit()
}

// audit checks conservation and trip completeness.
func (s *system) audit() error {
	n := s.pool.ReadUint64(s.ledger)
	reservedF := make([]uint64, resources)
	reservedR := make([]uint64, resources)
	reservedC := make([]uint64, resources)
	for i := uint64(0); i < n; i++ {
		ent := s.ledger + 8 + specpmt.Addr(i*24)
		f := s.pool.ReadUint64(ent)
		r := s.pool.ReadUint64(ent + 8)
		c := s.pool.ReadUint64(ent + 16)
		if f == 0 || r == 0 || c == 0 {
			return fmt.Errorf("ledger entry %d incomplete: flight=%d room=%d car=%d", i, f, r, c)
		}
		reservedF[f-1]++
		reservedR[r-1]++
		reservedC[c-1]++
	}
	check := func(name string, table specpmt.Addr, reserved []uint64) error {
		for i := 0; i < resources; i++ {
			free := s.pool.ReadUint64(table + specpmt.Addr(i*8))
			if free+reserved[i] != capacity {
				return fmt.Errorf("%s %d: free %d + reserved %d != capacity %d",
					name, i, free, reserved[i], capacity)
			}
		}
		return nil
	}
	if err := check("flight", s.flights, reservedF); err != nil {
		return err
	}
	if err := check("room", s.rooms, reservedR); err != nil {
		return err
	}
	return check("car", s.cars, reservedC)
}

func main() {
	pool, err := specpmt.Open(specpmt.Config{Size: 128 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	sys, err := newSystem(pool)
	if err != nil {
		log.Fatal(err)
	}
	rng := sim.NewRand(11)
	booked, rejected := 0, 0
	for round := 0; round < numRounds; round++ {
		for i := 0; i < tripsRound; i++ {
			ok, err := sys.bookTrip(rng.Intn(resources), rng.Intn(resources), rng.Intn(resources))
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				booked++
			} else {
				rejected++
			}
		}
		// A booking is in flight when the power fails.
		tx := pool.Begin()
		tx.StoreUint64(sys.flights, 0) // would zero a flight row
		_ = tx
		if err := pool.Crash(rng.Uint64()); err != nil {
			log.Fatal(err)
		}
		if err := pool.Recover(); err != nil {
			log.Fatal(err)
		}
		sys = reattach(pool)
		if err := sys.audit(); err != nil {
			log.Fatalf("round %d: %v", round, err)
		}
		fmt.Printf("round %d: %3d trips booked, %2d sold out — ledger and tables consistent after crash\n",
			round, booked, rejected)
	}
	fmt.Printf("modeled time: %.2fms\n", float64(pool.ModeledTime())/1e6)
}
