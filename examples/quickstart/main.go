// Quickstart: open a pool, commit a transaction with a single fence, crash,
// recover, and observe that committed data survived while an interrupted
// transaction was revoked — speculative logging's whole contract in thirty
// lines.
package main

import (
	"fmt"
	"log"

	"specpmt"
)

func main() {
	pool, err := specpmt.Open(specpmt.Config{}) // SpecSPMT engine
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()

	account, err := pool.Alloc(64)
	if err != nil {
		log.Fatal(err)
	}

	// A committed transaction: in-place update, speculative log of the new
	// value, ONE fence at commit.
	tx := pool.Begin()
	tx.StoreUint64(account, 1000)
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed balance: %d\n", pool.ReadUint64(account))

	// An interrupted transaction: in-place update with no commit.
	tx = pool.Begin()
	tx.StoreUint64(account, 9999999)
	fmt.Println("power failure mid-transaction...")
	if err := pool.Crash(42); err != nil {
		log.Fatal(err)
	}
	if err := pool.Recover(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after recovery:    %d (uncommitted update revoked)\n", pool.ReadUint64(account))
	fmt.Printf("modeled time: %dns\n%s", pool.ModeledTime(), pool.Stats())
}
