// Kmeans: the STAMP clustering kernel with persistent centroids — the
// workload behind the paper's kmeans-low/high rows (Table 2: ~27 durable
// updates per transaction into a small, hot region, exactly the access
// pattern speculative logging loves). Points live in volatile memory; the
// centroid table is persistent and every assignment round updates it in
// crash-atomic transactions. Power failures strike between rounds; recovery
// must reproduce the last committed centroid state bit for bit, letting the
// algorithm resume instead of restarting.
package main

import (
	"fmt"
	"log"
	"math"

	"specpmt"
	"specpmt/internal/sim"
)

const (
	k          = 8 // clusters
	dims       = 4 // dimensions
	points     = 600
	iterations = 8
)

// Centroid table layout: k rows of [count u64][sum[dims] u64-scaled].
// Values are fixed-point (x1000) so the store stays integer.
const rowSize = 8 * (1 + dims)

func centroidRow(base specpmt.Addr, c int) specpmt.Addr {
	return base + specpmt.Addr(c*rowSize)
}

func main() {
	pool, err := specpmt.Open(specpmt.Config{Size: 128 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	rng := sim.NewRand(4)

	// Volatile dataset: clustered points around k seeds.
	data := make([][dims]float64, points)
	seeds := make([][dims]float64, k)
	for c := range seeds {
		for d := 0; d < dims; d++ {
			seeds[c][d] = float64(rng.Intn(1000))
		}
	}
	for i := range data {
		c := rng.Intn(k)
		for d := 0; d < dims; d++ {
			data[i][d] = seeds[c][d] + float64(rng.Intn(40))
		}
	}

	// Persistent centroid table, initialised to the first k points.
	table, err := pool.Alloc(k * rowSize)
	if err != nil {
		log.Fatal(err)
	}
	tx := pool.Begin()
	for c := 0; c < k; c++ {
		tx.StoreUint64(centroidRow(table, c), 1)
		for d := 0; d < dims; d++ {
			tx.StoreUint64(centroidRow(table, c)+specpmt.Addr(8+d*8), uint64(data[c][d]*1000))
		}
	}
	if err := tx.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := pool.SetRoot(0, uint64(table)); err != nil {
		log.Fatal(err)
	}

	readCentroid := func(c int) (mean [dims]float64) {
		n := float64(pool.ReadUint64(centroidRow(table, c)))
		if n == 0 {
			n = 1
		}
		for d := 0; d < dims; d++ {
			mean[d] = float64(pool.ReadUint64(centroidRow(table, c)+specpmt.Addr(8+d*8))) / 1000 / n
		}
		return
	}

	// oracle mirrors the committed centroid table for post-crash checks.
	oracle := make([]uint64, k*(1+dims))
	snapshot := func() {
		for c := 0; c < k; c++ {
			oracle[c*(1+dims)] = pool.ReadUint64(centroidRow(table, c))
			for d := 0; d < dims; d++ {
				oracle[c*(1+dims)+1+d] = pool.ReadUint64(centroidRow(table, c) + specpmt.Addr(8+d*8))
			}
		}
	}
	snapshot()

	for iter := 0; iter < iterations; iter++ {
		// Assignment phase (pure compute over committed centroids).
		means := make([][dims]float64, k)
		for c := 0; c < k; c++ {
			means[c] = readCentroid(c)
		}
		assign := make([]int, points)
		for i, p := range data {
			best, bestD := 0, math.MaxFloat64
			for c := 0; c < k; c++ {
				d2 := 0.0
				for d := 0; d < dims; d++ {
					diff := p[d] - means[c][d]
					d2 += diff * diff
				}
				if d2 < bestD {
					best, bestD = c, d2
				}
			}
			assign[i] = best
		}
		// Update phase: one crash-atomic transaction replaces the table
		// (STAMP updates per point inside small transactions; batching per
		// round keeps the demo fast while preserving the hot-region shape).
		sums := make([][dims]uint64, k)
		counts := make([]uint64, k)
		for i, p := range data {
			c := assign[i]
			counts[c]++
			for d := 0; d < dims; d++ {
				sums[c][d] += uint64(p[d] * 1000)
			}
		}
		tx := pool.Begin()
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				continue
			}
			tx.StoreUint64(centroidRow(table, c), counts[c])
			for d := 0; d < dims; d++ {
				tx.StoreUint64(centroidRow(table, c)+specpmt.Addr(8+d*8), sums[c][d])
			}
		}
		if err := tx.Commit(); err != nil {
			log.Fatal(err)
		}
		snapshot()

		// Power failure every other round, sometimes with an update in
		// flight.
		if iter%2 == 1 {
			tx := pool.Begin()
			tx.StoreUint64(centroidRow(table, 0), 999999) // uncommitted
			if err := pool.Crash(rng.Uint64()); err != nil {
				log.Fatal(err)
			}
			if err := pool.Recover(); err != nil {
				log.Fatal(err)
			}
			table = specpmt.Addr(pool.Root(0))
			for c := 0; c < k; c++ {
				if pool.ReadUint64(centroidRow(table, c)) != oracle[c*(1+dims)] {
					log.Fatalf("iter %d: centroid %d count diverged after crash", iter, c)
				}
				for d := 0; d < dims; d++ {
					if pool.ReadUint64(centroidRow(table, c)+specpmt.Addr(8+d*8)) != oracle[c*(1+dims)+1+d] {
						log.Fatalf("iter %d: centroid %d dim %d diverged after crash", iter, c, d)
					}
				}
			}
			fmt.Printf("iter %d: crash + recovery, centroid table intact — resuming\n", iter)
		}
	}
	// Final sanity: every centroid is near one of the true seeds.
	matched := 0
	for c := 0; c < k; c++ {
		m := readCentroid(c)
		for _, s := range seeds {
			d2 := 0.0
			for d := 0; d < dims; d++ {
				diff := m[d] - (s[d] + 20) // points offset by U[0,40)
				d2 += diff * diff
			}
			if math.Sqrt(d2) < 60 {
				matched++
				break
			}
		}
	}
	fmt.Printf("converged: %d/%d centroids landed on true clusters; modeled time %.2fms\n",
		matched, k, float64(pool.ModeledTime())/1e6)
	if matched < k/2 {
		log.Fatal("kmeans failed to converge")
	}
}
