// Labyrinth: a miniature of STAMP's maze router — the application with the
// paper's largest speedup (49.7×, Figure 12) because every transaction
// writes a whole routed path (~1.4 KB) into the shared grid. Each routing
// transaction claims every cell of a breadth-first path atomically; crashes
// strike mid-route; after recovery the grid is audited: every committed
// path is fully present and unbroken, and no interrupted route left a
// partial trail.
package main

import (
	"fmt"
	"log"

	"specpmt"
	"specpmt/internal/sim"
)

const (
	gridW, gridH = 64, 64
	numRoutes    = 40
	rounds       = 4
)

// grid cell: u64 route id (0 = free).
type maze struct {
	pool *specpmt.Pool
	grid specpmt.Addr
}

func newMaze(pool *specpmt.Pool) (*maze, error) {
	g, err := pool.Alloc(gridW * gridH * 8)
	if err != nil {
		return nil, err
	}
	if err := pool.SetRoot(0, uint64(g)); err != nil {
		return nil, err
	}
	return &maze{pool: pool, grid: g}, nil
}

func reattach(pool *specpmt.Pool) *maze {
	return &maze{pool: pool, grid: specpmt.Addr(pool.Root(0))}
}

func (m *maze) cell(x, y int) specpmt.Addr {
	return m.grid + specpmt.Addr((y*gridW+x)*8)
}

// findPath runs a BFS over the committed grid state from (sx,sy) to (tx,ty),
// avoiding occupied cells. Returns nil if no route exists.
func (m *maze) findPath(sx, sy, tx, ty int) [][2]int {
	type node struct{ x, y int }
	prev := map[node]node{}
	seen := map[node]bool{{sx, sy}: true}
	queue := []node{{sx, sy}}
	found := false
	for len(queue) > 0 && !found {
		n := queue[0]
		queue = queue[1:]
		for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nx, ny := n.x+d[0], n.y+d[1]
			if nx < 0 || ny < 0 || nx >= gridW || ny >= gridH {
				continue
			}
			nn := node{nx, ny}
			if seen[nn] {
				continue
			}
			if m.pool.ReadUint64(m.cell(nx, ny)) != 0 && !(nx == tx && ny == ty) {
				continue
			}
			seen[nn] = true
			prev[nn] = n
			if nx == tx && ny == ty {
				found = true
				break
			}
			queue = append(queue, nn)
		}
	}
	if !found {
		return nil
	}
	var path [][2]int
	for n := (node{tx, ty}); ; n = prev[n] {
		path = append(path, [2]int{n.x, n.y})
		if n.x == sx && n.y == sy {
			break
		}
	}
	return path
}

// route claims the whole path under one transaction (the STAMP pattern:
// compute on a private snapshot, then transactionally write the grid path).
func (m *maze) route(id uint64, path [][2]int) (bool, error) {
	tx := m.pool.Begin()
	for _, c := range path {
		if tx.LoadUint64(m.cell(c[0], c[1])) != 0 {
			return false, tx.Abort() // somebody claimed a cell meanwhile
		}
		tx.StoreUint64(m.cell(c[0], c[1]), id)
	}
	return true, tx.Commit()
}

func main() {
	pool, err := specpmt.Open(specpmt.Config{Size: 128 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	m, err := newMaze(pool)
	if err != nil {
		log.Fatal(err)
	}
	rng := sim.NewRand(17)
	committed := map[uint64]int{} // route id -> path length
	nextID := uint64(1)

	for round := 0; round < rounds; round++ {
		for r := 0; r < numRoutes; r++ {
			sx, sy := rng.Intn(gridW), rng.Intn(gridH)
			tx, ty := rng.Intn(gridW), rng.Intn(gridH)
			if sx == tx && sy == ty {
				continue
			}
			path := m.findPath(sx, sy, tx, ty)
			if path == nil {
				continue
			}
			ok, err := m.route(nextID, path)
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				committed[nextID] = len(path)
				nextID++
			}
		}
		// Crash with one route half-written.
		if path := m.findPath(0, 0, gridW-1, gridH-1); path != nil {
			tx := pool.Begin()
			for _, c := range path[:len(path)/2] {
				tx.StoreUint64(m.cell(c[0], c[1]), 999999)
			}
			_ = tx // never committed
		}
		if err := pool.Crash(rng.Uint64()); err != nil {
			log.Fatal(err)
		}
		if err := pool.Recover(); err != nil {
			log.Fatal(err)
		}
		m = reattach(pool)
		// Audit: cell counts per committed route id must match path lengths;
		// no foreign ids.
		counts := map[uint64]int{}
		for y := 0; y < gridH; y++ {
			for x := 0; x < gridW; x++ {
				if id := pool.ReadUint64(m.cell(x, y)); id != 0 {
					counts[id]++
				}
			}
		}
		for id, n := range counts {
			if committed[id] != n {
				log.Fatalf("round %d: route %d has %d cells, committed %d — torn path",
					round, id, n, committed[id])
			}
		}
		for id, n := range committed {
			if counts[id] != n {
				log.Fatalf("round %d: committed route %d missing cells (%d/%d)",
					round, id, counts[id], n)
			}
		}
		fmt.Printf("round %d: %3d routes committed, grid audit clean after crash\n",
			round, len(committed))
	}
	fmt.Printf("modeled time: %.2fms\n", float64(pool.ModeledTime())/1e6)
}
