// SSCA2: the STAMP graph-construction kernel — small scattered transactional
// updates over a large footprint (Table 2: 16-byte write sets across a
// multi-megabyte adjacency store), the profile on which out-of-place designs
// drown in log traffic (§7.3). Each transaction inserts one directed edge:
// bump the node's degree and write the adjacency slot, atomically. Crashes
// strike mid-build; the audit proves every committed edge is present with a
// consistent degree count and no torn insert survived.
package main

import (
	"fmt"
	"log"

	"specpmt"
	"specpmt/internal/sim"
)

const (
	nodes     = 4096
	maxDegree = 16
	rounds    = 5
	edgeBatch = 400
)

// Node row: [degree u64][adj[maxDegree] u64 (target+1)]
const rowSize = 8 * (1 + maxDegree)

func row(base specpmt.Addr, n int) specpmt.Addr {
	return base + specpmt.Addr(n*rowSize)
}

func main() {
	pool, err := specpmt.Open(specpmt.Config{Size: 256 << 20})
	if err != nil {
		log.Fatal(err)
	}
	defer pool.Close()
	rng := sim.NewRand(6)

	graph, err := pool.Alloc(nodes * rowSize)
	if err != nil {
		log.Fatal(err)
	}
	if err := pool.SetRoot(0, uint64(graph)); err != nil {
		log.Fatal(err)
	}

	// addEdge inserts src->dst atomically; false if src's row is full or
	// the edge already exists.
	addEdge := func(src, dst int) (bool, error) {
		tx := pool.Begin()
		deg := tx.LoadUint64(row(graph, src))
		if deg >= maxDegree {
			return false, tx.Abort()
		}
		for i := uint64(0); i < deg; i++ {
			if tx.LoadUint64(row(graph, src)+specpmt.Addr(8+i*8)) == uint64(dst+1) {
				return false, tx.Abort()
			}
		}
		tx.StoreUint64(row(graph, src)+specpmt.Addr(8+deg*8), uint64(dst+1))
		tx.StoreUint64(row(graph, src), deg+1)
		return true, tx.Commit()
	}

	type edge struct{ src, dst int }
	committed := map[edge]bool{}
	inserted := 0
	for round := 0; round < rounds; round++ {
		for i := 0; i < edgeBatch; i++ {
			src, dst := rng.Intn(nodes), rng.Intn(nodes)
			ok, err := addEdge(src, dst)
			if err != nil {
				log.Fatal(err)
			}
			if ok {
				committed[edge{src, dst}] = true
				inserted++
			}
		}
		// Crash with one edge insert in flight.
		src := rng.Intn(nodes)
		tx := pool.Begin()
		deg := tx.LoadUint64(row(graph, src))
		if deg < maxDegree {
			tx.StoreUint64(row(graph, src)+specpmt.Addr(8+deg*8), 777777)
			// degree bump deliberately mid-flight: crash now
		}
		if err := pool.Crash(rng.Uint64()); err != nil {
			log.Fatal(err)
		}
		if err := pool.Recover(); err != nil {
			log.Fatal(err)
		}
		graph = specpmt.Addr(pool.Root(0))
		// Audit: adjacency contents == committed edge set; degrees match.
		found := 0
		for n := 0; n < nodes; n++ {
			deg := pool.ReadUint64(row(graph, n))
			if deg > maxDegree {
				log.Fatalf("round %d: node %d degree %d overflows", round, n, deg)
			}
			seen := map[uint64]bool{}
			for i := uint64(0); i < deg; i++ {
				tgt := pool.ReadUint64(row(graph, n) + specpmt.Addr(8+i*8))
				if tgt == 0 || tgt > nodes {
					log.Fatalf("round %d: node %d slot %d holds torn target %d", round, n, i, tgt)
				}
				if seen[tgt] {
					log.Fatalf("round %d: node %d duplicate edge to %d", round, n, tgt-1)
				}
				seen[tgt] = true
				if !committed[edge{n, int(tgt - 1)}] {
					log.Fatalf("round %d: phantom edge %d->%d (uncommitted insert survived)", round, n, tgt-1)
				}
				found++
			}
		}
		if found != len(committed) {
			log.Fatalf("round %d: %d edges in graph, %d committed", round, found, len(committed))
		}
		fmt.Printf("round %d: %5d edges committed, graph audit clean after crash\n", round, found)
	}
	fmt.Printf("modeled time: %.2fms\n", float64(pool.ModeledTime())/1e6)
}
