// Multithread: per-thread speculative logs with merged recovery. Four
// goroutines commit to their own regions and to one mutex-guarded shared
// counter; a power failure interrupts them; the merged, timestamp-ordered
// replay (§4.1) restores the committed history exactly — including the
// right "last writer" for the shared counter across the private logs.
//
// Runs the scenario on both the software engine (SpecSPMT, spec.Pool) and
// the hardware engine (SpecHPMT, hwsim.Cluster with the §5.2.2 epoch
// reclamation protocol).
package main

import (
	"fmt"
	"log"
	"sync"

	"specpmt"
	"specpmt/internal/sim"
)

const threads = 4

func main() {
	for _, engine := range []string{"SpecSPMT", "SpecHPMT"} {
		if err := run(engine); err != nil {
			log.Fatalf("%s: %v", engine, err)
		}
	}
}

func run(engine string) error {
	pool, err := specpmt.OpenThreaded(specpmt.Config{Engine: engine}, threads)
	if err != nil {
		return err
	}
	defer pool.Close()

	private := make([]specpmt.Addr, threads)
	for i := range private {
		private[i], err = pool.Alloc(4096)
		if err != nil {
			return err
		}
	}
	shared, err := pool.Alloc(64)
	if err != nil {
		return err
	}

	var mu sync.Mutex // caller-provided isolation (§4.3.3)
	lastShared := uint64(0)
	committed := make([]uint64, threads)

	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := sim.NewRand(uint64(i) + 1)
			for r := uint64(1); r <= 50; r++ {
				// Private region: no locking needed.
				tx := pool.Begin(i)
				tx.StoreUint64(private[i], r)
				if err := tx.Commit(); err != nil {
					log.Println(err)
					return
				}
				committed[i] = r
				// Occasionally bump the shared counter under the lock.
				if rng.Float64() < 0.3 {
					mu.Lock()
					v := lastShared + 1
					tx := pool.Begin(i)
					tx.StoreUint64(shared, v)
					if err := tx.Commit(); err != nil {
						log.Println(err)
						mu.Unlock()
						return
					}
					lastShared = v
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	if err := pool.Crash(99); err != nil {
		return err
	}
	if err := pool.Recover(); err != nil {
		return err
	}

	for i := range private {
		if got := pool.ReadUint64(private[i]); got != committed[i] {
			return fmt.Errorf("thread %d region: got %d want %d", i, got, committed[i])
		}
	}
	if got := pool.ReadUint64(shared); got != lastShared {
		return fmt.Errorf("shared counter: got %d want %d (timestamp-ordered merge failed)", got, lastShared)
	}
	fmt.Printf("%-10s %d threads, %d shared increments: merged recovery exact\n",
		engine, threads, lastShared)
	return nil
}
