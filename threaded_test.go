package specpmt

import (
	"sync"
	"testing"
)

func TestThreadedPoolBothEngines(t *testing.T) {
	for _, engine := range []string{"SpecSPMT", "SpecHPMT"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			const threads, rounds = 3, 30
			p, err := OpenThreaded(Config{Engine: engine}, threads)
			if err != nil {
				t.Fatal(err)
			}
			addrs := make([]Addr, threads)
			for i := range addrs {
				addrs[i], _ = p.Alloc(4096)
			}
			var wg sync.WaitGroup
			for i := 0; i < threads; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := uint64(1); r <= rounds; r++ {
						tx := p.Begin(i)
						tx.StoreUint64(addrs[i], uint64(i*1000)+r)
						if err := tx.Commit(); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if err := p.Crash(5); err != nil {
				t.Fatal(err)
			}
			if err := p.Recover(); err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			for i := range addrs {
				want := uint64(i*1000) + rounds
				if got := p.ReadUint64(addrs[i]); got != want {
					t.Fatalf("thread %d: got %d want %d", i, got, want)
				}
			}
		})
	}
}

func TestThreadedPoolRejectsBadConfig(t *testing.T) {
	if _, err := OpenThreaded(Config{Engine: "no-such-engine"}, 2); err == nil {
		t.Fatal("unknown engines must be rejected")
	}
	if _, err := OpenThreaded(Config{Engine: "HOOP"}, 2); err == nil {
		t.Fatal("hardware-only engines must be rejected")
	}
	if _, err := OpenThreaded(Config{}, 0); err == nil {
		t.Fatal("zero threads must be rejected")
	}
}

// TestThreadedPoolGenericEngines drives the per-thread independent-engine
// path: every registered software baseline runs threads on disjoint data,
// survives a crash, and recovers each engine's own log.
func TestThreadedPoolGenericEngines(t *testing.T) {
	for _, engine := range []string{"PMDK", "SpecSPMT-Hash", "SPHT"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			const threads, rounds = 3, 20
			p, err := OpenThreaded(Config{Engine: engine}, threads)
			if err != nil {
				t.Fatal(err)
			}
			addrs := make([]Addr, threads)
			for i := range addrs {
				addrs[i], _ = p.Alloc(4096)
			}
			var wg sync.WaitGroup
			for i := 0; i < threads; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := uint64(1); r <= rounds; r++ {
						tx := p.Begin(i)
						tx.StoreUint64(addrs[i], uint64(i*1000)+r)
						if err := tx.Commit(); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if c := p.Counters(); c.TxCommitted < threads*rounds {
				t.Fatalf("Counters().TxCommitted=%d want >= %d", c.TxCommitted, threads*rounds)
			}
			if err := p.Crash(7); err != nil {
				t.Fatal(err)
			}
			if err := p.Recover(); err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			for i := range addrs {
				want := uint64(i*1000) + rounds
				if got := p.ReadUint64(addrs[i]); got != want {
					t.Fatalf("thread %d: got %d want %d", i, got, want)
				}
			}
			// Counters survive the crash via accumulation.
			if c := p.Counters(); c.TxCommitted < threads*rounds {
				t.Fatalf("post-crash Counters().TxCommitted=%d want >= %d", c.TxCommitted, threads*rounds)
			}
			if p.ModeledTime() <= 0 {
				t.Fatal("ModeledTime must advance")
			}
		})
	}
}

// TestThreadView exercises the per-thread façade the sharded server builds
// persistent data structures on: roots, alloc/free, and transactions all
// through the view.
func TestThreadView(t *testing.T) {
	p, err := OpenThreaded(Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	th := p.Thread(1)
	if th.Index() != 1 {
		t.Fatalf("Index()=%d", th.Index())
	}
	a, err := th.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	tx := th.Begin()
	tx.StoreUint64(a, 77)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := th.ReadUint64(a); got != 77 {
		t.Fatalf("ReadUint64=%d", got)
	}
	if err := th.SetRoot(3, uint64(a)); err != nil {
		t.Fatal(err)
	}
	if got := th.Root(3); got != uint64(a) {
		t.Fatalf("Root(3)=%d want %d", got, a)
	}
	if got := p.Root(3); got != uint64(a) {
		t.Fatalf("pool Root(3)=%d want %d", got, a)
	}
	if th.Now() <= 0 {
		t.Fatal("thread clock must advance")
	}
	th.Free(a, 64)
	if p.Thread(5) != nil || p.Thread(-1) != nil {
		t.Fatal("out-of-range Thread must return nil")
	}
}

func TestThreadedPoolUsableAfterRecovery(t *testing.T) {
	p, err := OpenThreaded(Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Alloc(64)
	tx := p.Begin(0)
	tx.StoreUint64(a, 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(3); err != nil {
		t.Fatal(err)
	}
	if err := p.Recover(); err != nil {
		t.Fatal(err)
	}
	tx = p.Begin(1)
	tx.StoreUint64(a, 2)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(4); err != nil {
		t.Fatal(err)
	}
	if err := p.Recover(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := p.ReadUint64(a); got != 2 {
		t.Fatalf("a=%d want 2", got)
	}
}

func TestThreadedPoolWithSpecOptions(t *testing.T) {
	p, err := OpenThreaded(Config{
		Engine:      "SpecSPMT",
		SpecOptions: &specOptionsForTest,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	a, _ := p.Alloc(64)
	for r := uint64(1); r <= 200; r++ {
		tx := p.Begin(0)
		tx.StoreUint64(a, r)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.ReadUint64(a); got != 200 {
		t.Fatalf("a=%d", got)
	}
}

// TestDeferredCommitPrefixRecovery pins the crash contract CommitNoFence
// rests on: transactions committed without their fence may be lost, but
// only as a suffix — recovery always yields a prefix of the speculative
// commit order, never a gap, and never a torn transaction. Pipelined group
// commit in internal/server is safe exactly because of this: replies are
// parked until Thread.Fence retires, so anything a crash can lose was
// never acknowledged.
func TestDeferredCommitPrefixRecovery(t *testing.T) {
	const total, fenced = 40, 15
	for seed := uint64(1); seed <= 20; seed++ {
		p, err := OpenThreaded(Config{Engine: "SpecSPMT"}, 1)
		if err != nil {
			t.Fatal(err)
		}
		th := p.Thread(0)
		a, _ := p.Alloc(64)
		b, _ := p.Alloc(64)
		for v := uint64(1); v <= total; v++ {
			tx := th.Begin()
			dtx, ok := tx.(DeferredCommitTx)
			if !ok {
				t.Fatal("spec engine must support CommitNoFence")
			}
			// Two cells in one transaction: tearing would leave a != b.
			dtx.StoreUint64(a, v)
			dtx.StoreUint64(b, v)
			if err := dtx.CommitNoFence(); err != nil {
				t.Fatal(err)
			}
			if v == fenced {
				th.Fence() // retire the first `fenced` commits
			}
		}
		if err := p.Crash(seed); err != nil {
			t.Fatal(err)
		}
		if err := p.Recover(); err != nil {
			t.Fatal(err)
		}
		got, gotB := p.ReadUint64(a), p.ReadUint64(b)
		if got != gotB {
			p.Close()
			t.Fatalf("seed %d: torn transaction survived: a=%d b=%d", seed, got, gotB)
		}
		if got < fenced || got > total {
			p.Close()
			t.Fatalf("seed %d: recovered %d, want a prefix in [%d, %d]", seed, got, fenced, total)
		}
		if err := p.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDeferredCommitFenceCoalescing asserts the whole point: K speculative
// commits plus one retire fence issue exactly one fence, not K.
func TestDeferredCommitFenceCoalescing(t *testing.T) {
	p, err := OpenThreaded(Config{Engine: "SpecSPMT"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	th := p.Thread(0)
	a, _ := p.Alloc(64)
	warm := th.Begin()
	warm.StoreUint64(a, 1)
	if err := warm.Commit(); err != nil {
		t.Fatal(err)
	}
	const k = 16
	before := th.Counters().Fences
	for v := uint64(0); v < k; v++ {
		tx := th.Begin().(DeferredCommitTx)
		tx.StoreUint64(a, v)
		if err := tx.CommitNoFence(); err != nil {
			t.Fatal(err)
		}
	}
	th.Fence()
	if got := th.Counters().Fences - before; got != 1 {
		t.Fatalf("%d commits + retire issued %d fences, want exactly 1", k, got)
	}
	fencedOnly := th.Counters().Fences
	for v := uint64(0); v < k; v++ {
		tx := th.Begin()
		tx.StoreUint64(a, v)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := th.Counters().Fences - fencedOnly; got != k {
		t.Fatalf("fenced commits issued %d fences, want %d", got, k)
	}
}
