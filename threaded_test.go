package specpmt

import (
	"sync"
	"testing"
)

func TestThreadedPoolBothEngines(t *testing.T) {
	for _, engine := range []string{"SpecSPMT", "SpecHPMT"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			const threads, rounds = 3, 30
			p, err := OpenThreaded(Config{Engine: engine}, threads)
			if err != nil {
				t.Fatal(err)
			}
			addrs := make([]Addr, threads)
			for i := range addrs {
				addrs[i], _ = p.Alloc(4096)
			}
			var wg sync.WaitGroup
			for i := 0; i < threads; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					for r := uint64(1); r <= rounds; r++ {
						tx := p.Begin(i)
						tx.StoreUint64(addrs[i], uint64(i*1000)+r)
						if err := tx.Commit(); err != nil {
							t.Error(err)
							return
						}
					}
				}()
			}
			wg.Wait()
			if err := p.Crash(5); err != nil {
				t.Fatal(err)
			}
			if err := p.Recover(); err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			for i := range addrs {
				want := uint64(i*1000) + rounds
				if got := p.ReadUint64(addrs[i]); got != want {
					t.Fatalf("thread %d: got %d want %d", i, got, want)
				}
			}
		})
	}
}

func TestThreadedPoolRejectsOtherEngines(t *testing.T) {
	if _, err := OpenThreaded(Config{Engine: "PMDK"}, 2); err == nil {
		t.Fatal("threaded pools only support the SpecPMT engines")
	}
	if _, err := OpenThreaded(Config{}, 0); err == nil {
		t.Fatal("zero threads must be rejected")
	}
}

func TestThreadedPoolUsableAfterRecovery(t *testing.T) {
	p, err := OpenThreaded(Config{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Alloc(64)
	tx := p.Begin(0)
	tx.StoreUint64(a, 1)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(3); err != nil {
		t.Fatal(err)
	}
	if err := p.Recover(); err != nil {
		t.Fatal(err)
	}
	tx = p.Begin(1)
	tx.StoreUint64(a, 2)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := p.Crash(4); err != nil {
		t.Fatal(err)
	}
	if err := p.Recover(); err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if got := p.ReadUint64(a); got != 2 {
		t.Fatalf("a=%d want 2", got)
	}
}

func TestThreadedPoolWithSpecOptions(t *testing.T) {
	p, err := OpenThreaded(Config{
		Engine:      "SpecSPMT",
		SpecOptions: &specOptionsForTest,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	a, _ := p.Alloc(64)
	for r := uint64(1); r <= 200; r++ {
		tx := p.Begin(0)
		tx.StoreUint64(a, r)
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.ReadUint64(a); got != 200 {
		t.Fatalf("a=%d", got)
	}
}
