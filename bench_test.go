package specpmt

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (§7). Each BenchmarkFigure*/BenchmarkTable* target reruns the
// corresponding experiment and reports the figure's series as custom
// benchmark metrics (modeled speedups, overheads, traffic reductions), so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation, and
//
//	go test -bench=BenchmarkFigure13 -v
//
// prints one figure. Wall time of these benches measures the simulator, not
// the schemes; the scheme comparison lives in the reported metrics. The
// Benchmark*Ablation* and BenchmarkEngineCommit targets are conventional
// hot-path microbenchmarks.

import (
	"fmt"
	"testing"
	"time"

	"specpmt/internal/harness"
	"specpmt/internal/pmem"
	"specpmt/internal/sim"
	"specpmt/internal/stamp"
	"specpmt/internal/txn"
	"specpmt/internal/txn/spec"
	"specpmt/internal/txn/txntest"
)

// benchTx is the per-application transaction count for figure regeneration.
const benchTx = 300

// reportFigure publishes every per-app series value and the geomeans as
// benchmark metrics, and prints the table under -v.
func reportFigure(b *testing.B, fig harness.Figure, percent bool) {
	b.Helper()
	for _, row := range fig.Rows {
		for eng, v := range row.Values {
			b.ReportMetric(v, row.Workload+"/"+eng)
		}
	}
	for eng, v := range fig.GeoMean {
		b.ReportMetric(v, "geomean/"+eng)
	}
	b.Log("\n" + fig.Format(percent))
}

// BenchmarkFigure1Software regenerates the top half of Figure 1: execution
// time overheads of PMDK and SPHT over transaction-free runs.
func BenchmarkFigure1Software(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure1Software(benchTx, 1, harness.ScenarioConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFigure(b, fig, true)
		}
	}
}

// BenchmarkFigure1Hardware regenerates the bottom half of Figure 1:
// overheads of EDE and HOOP over the no-log ideal.
func BenchmarkFigure1Hardware(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure1Hardware(benchTx, 1, harness.ScenarioConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFigure(b, fig, true)
		}
	}
}

// BenchmarkTable2 regenerates the workload characterisation table.
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.Table2(benchTx, 1)
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.GeneratedAvgSize, r.App+"/avg-tx-bytes")
				b.ReportMetric(r.GeneratedUpdPerTx, r.App+"/updates-per-tx")
				b.Logf("%-14s paper: %7.1fB %9d tx %11d updates | generated: %7.1fB %5.1f upd/tx",
					r.App, r.PaperAvgSize, r.PaperTxns, r.PaperUpdates, r.GeneratedAvgSize, r.GeneratedUpdPerTx)
			}
		}
	}
}

// BenchmarkFigure12 regenerates the software speedup figure: Kamino-Tx,
// SPHT, SpecSPMT-DP, and SpecSPMT over PMDK on the nine STAMP profiles.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure12(benchTx, 1, harness.ScenarioConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFigure(b, fig, false)
		}
	}
}

// BenchmarkSpecOverhead reports the headline claim: SpecSPMT's execution
// time overhead over transaction-free runs (the paper's "just 10%").
func BenchmarkSpecOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		per, geo, err := harness.SpecOverhead(benchTx, 1, harness.ScenarioConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(geo*100, "overhead-%/geomean")
			for app, ov := range per {
				b.ReportMetric(ov*100, "overhead-%/"+app)
			}
		}
	}
}

// BenchmarkFigure13 regenerates the hardware speedup figure: HOOP,
// SpecHPMT-DP, SpecHPMT, and no-log over EDE.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure13(benchTx, 1, harness.ScenarioConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFigure(b, fig, false)
		}
	}
}

// BenchmarkFigure14 regenerates the persistent-memory write-traffic
// reduction figure.
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fig, err := harness.Figure14(benchTx, 1, harness.ScenarioConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportFigure(b, fig, true)
		}
	}
}

// BenchmarkFigure15 regenerates the epoch-size sensitivity sweep: speedup
// and traffic reduction against memory consumption.
func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts, err := harness.Figure15(benchTx, 1, harness.ScenarioConfig{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, p := range pts {
				label := fmt.Sprintf("epoch-%dKiB", p.EpochBytes>>10)
				b.ReportMetric(p.AvgSpeedup, label+"/speedup")
				b.ReportMetric(p.MemOverheadPct, label+"/mem-overhead-%")
				b.ReportMetric(p.TrafficReduction*100, label+"/traffic-reduction-%")
				b.Logf("epoch=%7dB mem=%5.1f%% speedup=%.2fx trafficRed=%4.1f%%",
					p.EpochBytes, p.MemOverheadPct, p.AvgSpeedup, p.TrafficReduction*100)
			}
		}
	}
}

// BenchmarkHashVsSequentialLog reproduces the §4 ablation: the hash-table
// log design (one slot per datum, random writes) against the sequential
// chained-block design, across the STAMP profiles. The paper measures a
// 3.2x slowdown for the hash-table approach.
func BenchmarkHashVsSequentialLog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var ratios []float64
		for _, p := range stamp.Profiles() {
			seq, err := harness.RunSoftware("SpecSPMT", p, benchTx, 1)
			if err != nil {
				b.Fatal(err)
			}
			hash, err := harness.RunSoftware("SpecSPMT-Hash", p, benchTx, 1)
			if err != nil {
				b.Fatal(err)
			}
			ratios = append(ratios, float64(hash.ModeledNs)/float64(seq.ModeledNs))
			if i == b.N-1 {
				b.ReportMetric(ratios[len(ratios)-1], p.Name+"/slowdown-x")
			}
		}
		if i == b.N-1 {
			b.ReportMetric(harness.GeoMean(ratios), "geomean/slowdown-x")
		}
	}
}

// BenchmarkAblationCommitMarker measures what the checksum-as-commit-marker
// design saves over a dedicated commit flag with its own persist barrier
// (§4.1: "this design avoids a dedicated flag and a fence recording the
// commit status").
func BenchmarkAblationCommitMarker(b *testing.B) {
	run := func(flag bool) int64 {
		w := txntest.NewWorld(64 << 20)
		env := w.Env(false)
		e, err := spec.New(env, spec.Options{DisableReclaim: true, DedicatedCommitFlag: flag})
		if err != nil {
			b.Fatal(err)
		}
		defer e.Close()
		a, _ := w.DataHeap.Alloc(64)
		start := env.Core.Now()
		for r := uint64(0); r < 500; r++ {
			tx := e.Begin()
			tx.StoreUint64(a, r)
			if err := tx.Commit(); err != nil {
				b.Fatal(err)
			}
		}
		return env.Core.Now() - start
	}
	for i := 0; i < b.N; i++ {
		checksum := run(false)
		flag := run(true)
		if i == b.N-1 {
			b.ReportMetric(float64(flag)/float64(checksum), "flag-vs-checksum-slowdown-x")
		}
	}
}

// BenchmarkAblationReclaimThreshold sweeps the software reclamation trigger:
// smaller thresholds bound memory tighter but reclaim more often.
func BenchmarkAblationReclaimThreshold(b *testing.B) {
	for _, thr := range []int64{16 << 10, 64 << 10, 256 << 10} {
		thr := thr
		b.Run(fmt.Sprintf("threshold-%dKiB", thr>>10), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w := txntest.NewWorld(128 << 20)
				env := w.Env(false)
				e, err := spec.New(env, spec.Options{BlockSize: 8 << 10, ReclaimThreshold: thr})
				if err != nil {
					b.Fatal(err)
				}
				a, _ := w.DataHeap.Alloc(64)
				for r := uint64(0); r < 2000; r++ {
					tx := e.Begin()
					tx.StoreUint64(a, r)
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
				}
				if i == b.N-1 {
					b.ReportMetric(float64(e.LiveLogBytes()), "live-log-bytes")
					b.ReportMetric(float64(env.Core.Stats.ReclaimCycles), "reclaim-cycles")
				}
				e.Close()
			}
		})
	}
}

// BenchmarkEngineCommit measures the Go-level (wall-clock) cost of the
// commit path for every software engine — the library's own efficiency, as
// opposed to the modeled persistent memory timings above.
func BenchmarkEngineCommit(b *testing.B) {
	for _, name := range []string{"PMDK", "Kamino-Tx", "SPHT", "SpecSPMT-DP", "SpecSPMT"} {
		name := name
		b.Run(name, func(b *testing.B) {
			w := txntest.NewWorld(256 << 20)
			env := w.Env(false)
			e, err := txn.New(name, env)
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
			addrs := make([]pmem.Addr, 8)
			for i := range addrs {
				addrs[i], _ = w.DataHeap.Alloc(64)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tx := e.Begin()
				for _, a := range addrs {
					tx.StoreUint64(a, uint64(i))
				}
				if err := tx.Commit(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCrashRecovery measures recovery latency (wall clock) after 1000
// committed transactions, per engine. Each iteration pays the full
// setup+crash cycle; the recovery portion is reported as its own metric.
func BenchmarkCrashRecovery(b *testing.B) {
	for _, name := range []string{"PMDK", "SPHT", "SpecSPMT", "EDE", "SpecHPMT", "HOOP"} {
		name := name
		b.Run(name, func(b *testing.B) {
			var recoverNs int64
			for i := 0; i < b.N; i++ {
				pool, err := Open(Config{Engine: name, Size: 256 << 20})
				if err != nil {
					b.Fatal(err)
				}
				a, _ := pool.Alloc(64)
				for v := uint64(0); v < 1000; v++ {
					tx := pool.Begin()
					tx.StoreUint64(a, v)
					if err := tx.Commit(); err != nil {
						b.Fatal(err)
					}
				}
				if err := pool.Crash(uint64(i)); err != nil {
					b.Fatal(err)
				}
				t0 := time.Now()
				if err := pool.Recover(); err != nil {
					b.Fatal(err)
				}
				recoverNs += time.Since(t0).Nanoseconds()
				if got := pool.ReadUint64(a); got != 999 {
					b.Fatalf("recovery wrong: %d", got)
				}
				pool.Close()
			}
			b.ReportMetric(float64(recoverNs)/float64(b.N), "recover-ns")
		})
	}
}

// BenchmarkEADRSensitivity runs the software engines on an eADR platform
// (§5.3.1: persistence domain extended to the caches). With flushes reduced
// to hints and fences to issue cost, the crash-consistency overheads
// collapse — the experiment quantifies how much of each scheme's cost is
// persist-ordering versus logging bandwidth.
func BenchmarkEADRSensitivity(b *testing.B) {
	p, _ := stamp.ByName("kmeans-high")
	for i := 0; i < b.N; i++ {
		base, err := harness.RunSoftwareOpt(harness.RawEngine, p, benchTx, 1, harness.ScenarioConfig{Profile: sim.MustProfile("optane-eadr")})
		if err != nil {
			b.Fatal(err)
		}
		for _, eng := range []string{"PMDK", "SpecSPMT"} {
			adr, err := harness.RunSoftware(eng, p, benchTx, 1)
			if err != nil {
				b.Fatal(err)
			}
			eadr, err := harness.RunSoftwareOpt(eng, p, benchTx, 1, harness.ScenarioConfig{Profile: sim.MustProfile("optane-eadr")})
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(harness.Overhead(base, eadr)*100, eng+"/eadr-overhead-%")
				b.ReportMetric(float64(adr.ModeledNs)/float64(eadr.ModeledNs), eng+"/eadr-speedup-x")
			}
		}
	}
}

// BenchmarkThreadScaling measures multi-thread throughput scaling of the
// per-thread-log design (§3.1): SpecSPMT scales with threads because commits
// only append to private logs, while SpecSPMT-DP saturates the shared
// memory controller with commit-path data flushes.
func BenchmarkThreadScaling(b *testing.B) {
	p, _ := stamp.ByName("intruder")
	for i := 0; i < b.N; i++ {
		for _, threads := range []int{1, 2, 4} {
			r, err := harness.RunThreadedSpec(p, threads, 150, 1, false)
			if err != nil {
				b.Fatal(err)
			}
			d, err := harness.RunThreadedSpec(p, threads, 150, 1, true)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				b.ReportMetric(r.Throughput(), fmt.Sprintf("spec-tx-per-ms/%dthr", threads))
				b.ReportMetric(d.Throughput(), fmt.Sprintf("dp-tx-per-ms/%dthr", threads))
			}
		}
	}
}
